//! Real-parallel execution backend: dedicated OS-thread workers over the
//! same dataflow the simulated engine runs.
//!
//! [`ParEngine`] spawns `n_workers` OS threads up front. Each worker owns
//! a deque fed by slice-affinity lineage (mitosis chains a slice through
//! the operator pipeline on one dataflow thread) and steals from its
//! peers when idle — the same MonetDB-style discipline as
//! [`EngineCore::pop_task`](super::engine::EngineCore::pop_task). The
//! elastic mechanism actuates the pool for real: *grow/shrink* park and
//! unpark workers ([`ParEngine::set_active`]), *placement* is the unpark
//! order ([`ParEngine::set_wake_order`] — advisory, since the workspace
//! has no affinity syscalls; see `docs/ARCHITECTURE.md`).
//!
//! Scheduling width (partition counts, lineage preferences) depends only
//! on `n_workers`, never on the active count, and partials are merged in
//! strict partition order by the same `assemble_parts` the simulator
//! uses (`super::engine::assemble_parts`) —
//! so with `n_workers` equal to the simulated machine's core count both
//! backends produce bitwise-identical query results, and shrinking the
//! pool changes timing, not answers. There is no memo cache here: every
//! execution is real work, which is the point of this backend.
//!
//! ## Failure model
//!
//! A panic inside operator evaluation must not poison the pool mutex
//! and wedge every parked peer. Evaluation and assembly run under
//! `catch_unwind`; a panicking worker marks itself **dead**, drains its
//! deque back to the global queue, fails the offending query with a
//! typed [`QueryError`], and exits its thread. Survivors keep serving
//! (dead workers are skipped in the wake order), and when the last
//! worker dies every in-flight and future query fails fast with
//! [`QueryError::PoolDead`]. All lock acquisitions recover from
//! poisoning (`unwrap_or_else(PoisonError::into_inner)`) so a panic
//! elsewhere can never wedge the pool either.
//!
//! ## Self-healing
//!
//! Panics are *permanent* deaths (the worker is provably wedged on a
//! deterministic input), but workers can also go dark without a panic:
//! an injected fault ([`FaultPlan`]), a scheduling stall, a hung
//! syscall. Every worker bumps a per-worker heartbeat counter once per
//! loop iteration (parked workers wake on a timeout to keep beating),
//! and a **watchdog** thread sweeps the counters. A heartbeat frozen
//! for [`ParEngineConfig::stall_after`] gets recovered: the watchdog
//! bumps the worker's *generation*, requeues the one task the worker
//! was holding (`running[idx]`) **exactly once** — only if its partial
//! was never committed — drains the worker's deque back to the global
//! queue, respawns a replacement thread under the new generation, and
//! counts the repair in [`EngineStats::engine_recoveries`] /
//! [`EngineStats::recovery_ms`]. A superseded worker that turns out to
//! be merely slow discovers the generation bump at its next lock
//! acquisition and exits without committing, and partial commits are
//! additionally gated on "this partition is still empty", so a
//! watchdog false positive can duplicate *work* but never a *result* —
//! the backend-equivalence invariant survives recovery.

use crate::exec::engine::{
    assemble_parts, evaluate_partition_on, primary_input, EngineStats, ExecInputs, QueryResult,
};
use crate::exec::fault::{FaultPlan, WorkerFaultKind};
use crate::exec::mat::Mat;
use crate::exec::plan::{ColRef, NodeId, PhysOp, Plan};
use crate::exec::task::{n_parts_for, part_range, Partial, QueryId};
use crate::exec::tomograph::Tomograph;
use crate::storage::bat::ColData;
use crate::tpch::gen::TpchData;
use emca_metrics::{FxHashMap, SimDuration, SimTime};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a query produced no result. The pool stays serviceable after
/// either: callers decide whether to retry, shed, or abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A worker panicked evaluating this query's operator; the worker is
    /// dead and the pool degraded to the survivors.
    WorkerPanicked {
        /// MAL name of the operator that was evaluating.
        op: &'static str,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// Every worker has died; the pool cannot execute anything.
    PoolDead,
    /// The query was poisoned at the front door by the armed
    /// [`FaultPlan`] (`badquery:rate=…`); it never reached a worker.
    BadQuery,
    /// An internal dataflow invariant broke (a bug, reported instead of
    /// unwound).
    Internal(&'static str),
}

impl QueryError {
    /// Whether resubmitting the same query can plausibly succeed: the
    /// serve-path retry policy retries worker deaths (another worker —
    /// possibly a watchdog respawn — can run it) but not poisoned
    /// queries (deterministically poisoned again) or internal bugs.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            QueryError::WorkerPanicked { .. } | QueryError::PoolDead
        )
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::WorkerPanicked { op, message } => {
                write!(f, "worker panicked in {op}: {message}")
            }
            QueryError::PoolDead => write!(f, "every pool worker has died"),
            QueryError::BadQuery => write!(f, "query poisoned by the armed fault plan"),
            QueryError::Internal(what) => write!(f, "internal engine invariant broke: {what}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Immutable base-table columns shared by every worker (all `Arc`-backed,
/// so cloning a snapshot is pointer-cheap).
pub struct BaseData {
    cols: FxHashMap<(&'static str, &'static str), ColData>,
    rows: FxHashMap<&'static str, usize>,
}

impl BaseData {
    /// Snapshots the generated database for lock-free worker reads.
    pub fn from_tpch(data: &TpchData) -> Self {
        let mut cols = FxHashMap::default();
        let mut rows = FxHashMap::default();
        for table in &data.tables {
            for gc in &table.columns {
                rows.entry(table.name).or_insert_with(|| gc.data.len());
                cols.insert((table.name, gc.name), gc.data.clone());
            }
        }
        BaseData { cols, rows }
    }

    fn col(&self, c: &ColRef) -> &ColData {
        self.cols
            .get(&(c.table, c.column))
            // emca-lint: allow(panic-freedom) — plan/catalog mismatch is a construction bug; workers evaluate under catch_unwind, so this fails the query, not the pool
            .unwrap_or_else(|| panic!("unknown column {}.{}", c.table, c.column))
    }

    fn rows(&self, table: &str) -> usize {
        *self
            .rows
            .get(table)
            // emca-lint: allow(panic-freedom) — plan/catalog mismatch is a construction bug; workers evaluate under catch_unwind, so this fails the query, not the pool
            .unwrap_or_else(|| panic!("unknown table {table}"))
    }
}

/// [`ExecInputs`] over a lock-free snapshot: base columns plus the mats
/// of already-finished nodes, cloned under the lock before evaluation.
struct Snapshot<'a> {
    base: &'a BaseData,
    mats: &'a [Option<Mat>],
}

impl ExecInputs for Snapshot<'_> {
    fn col_data(&self, c: &ColRef) -> &ColData {
        self.base.col(c)
    }

    fn node_mat(&self, n: NodeId) -> &Mat {
        // emca-lint: allow(panic-freedom) — dataflow ordering invariant; only reachable inside catch_unwind (evaluate/assemble), so it fails the query, not the pool
        self.mats[n.idx()].as_ref().expect("input mat ready")
    }
}

/// One partition of one plan node (the threads-backend task descriptor;
/// no simulated placement fields).
#[derive(Clone, Copy, Debug)]
struct ParTask {
    qid: u64,
    node: NodeId,
    part: u32,
    n_parts: u32,
    pref_worker: Option<u32>,
}

struct ParNode {
    n_parts: u32,
    remaining: u32,
    waiting_inputs: u32,
    partials: Vec<Option<Partial>>,
    mat: Option<Mat>,
    /// Which worker executed each partition (slice-affinity lineage).
    part_worker: Vec<Option<u32>>,
}

struct ParQuery {
    label: String,
    spec_tag: u32,
    plan: Arc<Plan>,
    dependents: Vec<Vec<NodeId>>,
    nodes: Vec<ParNode>,
    pending_nodes: usize,
    submitted: SimTime,
    busy: SimDuration,
}

/// Everything behind the pool mutex.
struct State {
    queries: FxHashMap<u64, ParQuery>,
    next_qid: u64,
    global: VecDeque<ParTask>,
    per_worker: Vec<VecDeque<ParTask>>,
    /// `rank_of[worker]` — a worker runs while its rank (among live
    /// workers) is below `active`; the mechanism's placement preference
    /// is expressed by permuting ranks ([`ParEngine::set_wake_order`]).
    rank_of: Vec<usize>,
    active: usize,
    shutdown: bool,
    /// Workers that panicked and exited; skipped in the wake order and
    /// never scheduled to again.
    dead: Vec<bool>,
    n_dead: usize,
    /// The one task each worker popped and is evaluating right now.
    /// Set at pop, cleared at commit (both under this mutex): if the
    /// worker dies in between, the watchdog requeues it exactly once.
    running: Vec<Option<ParTask>>,
    /// Incarnation counter per worker slot. The watchdog bumps it when
    /// it recovers a worker; a thread whose generation no longer
    /// matches has been superseded and must exit without committing.
    worker_gen: Vec<u64>,
    results: FxHashMap<u64, Result<QueryResult, QueryError>>,
    stats: EngineStats,
    tomograph: Tomograph,
    /// Total worker-busy wall nanoseconds (the pool controller's CPU-load
    /// signal).
    busy_ns: u64,
}

impl State {
    /// This worker's rank counting live workers only, so dead workers
    /// are transparently skipped by grow/shrink.
    fn live_rank(&self, idx: usize) -> usize {
        let mine = self.rank_of[idx];
        (0..self.rank_of.len())
            .filter(|&w| !self.dead[w] && self.rank_of[w] < mine)
            .count()
    }
}

/// An armed fault plan plus its runtime bookkeeping (which scheduled
/// worker faults already fired, and the wall-clock zero the fault
/// offsets are measured from).
struct FaultsRt {
    plan: FaultPlan,
    seed: u64,
    t0: Instant,
    fired: Vec<bool>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for tasks or unparking.
    work: Condvar,
    /// Clients wait here for query completion.
    done: Condvar,
    base: Arc<BaseData>,
    n_workers: usize,
    epoch: Instant,
    cfg: ParEngineConfig,
    /// Per-worker liveness counters, bumped once per worker loop
    /// iteration; the watchdog's only health signal.
    heartbeats: Vec<AtomicU64>,
    /// The armed fault plan, if any ([`ParEngine::arm_faults`]).
    faults: Mutex<Option<FaultsRt>>,
    /// Fast-path gate so un-faulted runs never touch the `faults`
    /// mutex (the fault plane must be fully inert when unused).
    faults_armed: AtomicBool,
    /// Worker thread handles — shared (not on [`ParEngine`]) because
    /// the watchdog pushes respawned workers here too.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Locks the pool state, recovering from poisoning: the invariants
    /// behind this mutex are repaired by the dead-worker path, never
    /// abandoned mid-update (updates happen outside the lock and commit
    /// under it), so a poisoned guard's data is still consistent.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Waits for work with a bounded park so the worker keeps
    /// heartbeating: a worker that waited forever would be
    /// indistinguishable from a dead one.
    fn wait_work_timeout<'a>(
        &self,
        guard: MutexGuard<'a, State>,
        dur: Duration,
    ) -> MutexGuard<'a, State> {
        self.work
            .wait_timeout(guard, dur)
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }

    fn wait_done<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.done
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// How long a parked worker sleeps between heartbeats: well inside
    /// the watchdog's stall window so idle workers never look dead.
    fn worker_poll(&self) -> Duration {
        (self.cfg.stall_after / 4).clamp(Duration::from_millis(1), Duration::from_millis(50))
    }

    /// Pops the next due fault for worker `idx`, if any. Each scheduled
    /// fault fires at most once; with no plan armed this is a single
    /// relaxed atomic load.
    fn due_fault(&self, idx: usize) -> Option<WorkerFaultKind> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        let mut guard = self.faults.lock().unwrap_or_else(PoisonError::into_inner);
        let rt = guard.as_mut()?;
        let elapsed = rt.t0.elapsed().as_nanos() as u64;
        for (i, wf) in rt.plan.worker_faults.iter().enumerate() {
            if rt.fired[i] || wf.worker as usize != idx {
                continue;
            }
            if elapsed >= wf.at.as_nanos() {
                rt.fired[i] = true;
                return Some(wf.kind);
            }
        }
        None
    }

    /// Whether the armed fault plan poisons query `qid` (deterministic
    /// in the plan seed and qid; see [`FaultPlan::bad_query`]).
    fn query_poisoned(&self, qid: u64) -> bool {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return false;
        }
        let guard = self.faults.lock().unwrap_or_else(PoisonError::into_inner);
        guard
            .as_ref()
            .is_some_and(|rt| rt.plan.bad_query(rt.seed, qid))
    }
}

/// Registers a worker thread handle for join-at-shutdown.
fn push_handle(shared: &Shared, h: JoinHandle<()>) {
    shared
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(h);
}

/// Construction parameters for the thread pool.
#[derive(Clone, Copy, Debug)]
pub struct ParEngineConfig {
    /// Pool size — also the scheduling width that decides partition
    /// counts (match the simulated machine's core count for sim/threads
    /// result equivalence).
    pub n_workers: usize,
    /// Workers unparked at start (the rest wait for
    /// [`ParEngine::set_active`]).
    pub initial_active: usize,
    /// How long a worker's heartbeat may stay frozen before the
    /// watchdog declares it dead/stalled and recovers it. Must comfortably
    /// exceed one operator-partition evaluation (a worker does not beat
    /// mid-evaluation); false positives are safe but waste work.
    pub stall_after: Duration,
    /// Watchdog sweep interval (also bounds shutdown-join latency).
    pub sweep: Duration,
}

impl Default for ParEngineConfig {
    fn default() -> Self {
        ParEngineConfig {
            n_workers: 1,
            initial_active: 1,
            stall_after: Duration::from_millis(500),
            sweep: Duration::from_millis(50),
        }
    }
}

/// The real-parallel engine: a worker pool plus the dataflow state.
pub struct ParEngine {
    shared: Arc<Shared>,
    watchdog: Option<JoinHandle<()>>,
}

impl ParEngine {
    /// Spawns the pool. All `n_workers` threads start immediately;
    /// workers ranked at or above `initial_active` park until grown. A
    /// watchdog thread sweeps worker heartbeats from the start — self-
    /// healing is always on, fault plan or not.
    pub fn new(cfg: ParEngineConfig, base: Arc<BaseData>) -> Self {
        let n = cfg.n_workers.max(1);
        let cfg = ParEngineConfig {
            n_workers: n,
            ..cfg
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queries: FxHashMap::default(),
                next_qid: 0,
                global: VecDeque::new(),
                per_worker: (0..n).map(|_| VecDeque::new()).collect(),
                rank_of: (0..n).collect(),
                active: cfg.initial_active.clamp(1, n),
                shutdown: false,
                dead: vec![false; n],
                n_dead: 0,
                running: vec![None; n],
                worker_gen: vec![0; n],
                results: FxHashMap::default(),
                stats: EngineStats::default(),
                tomograph: Tomograph::new(),
                busy_ns: 0,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            base,
            n_workers: n,
            epoch: Instant::now(),
            cfg,
            heartbeats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            faults: Mutex::new(None),
            faults_armed: AtomicBool::new(false),
            handles: Mutex::new(Vec::with_capacity(n + 4)),
        });
        for idx in 0..n {
            let worker = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name(format!("emca-worker{idx}"))
                .spawn(move || worker_loop(worker, idx, 0))
                // emca-lint: allow(panic-freedom) — construction-time spawn failure (fd/thread exhaustion) happens before any query exists; nothing to degrade to
                .expect("spawn worker thread");
            push_handle(&shared, h);
        }
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("emca-watchdog".to_string())
                .spawn(move || watchdog_loop(shared))
                // emca-lint: allow(panic-freedom) — construction-time spawn failure happens before any query exists; nothing to degrade to
                .expect("spawn watchdog thread")
        };
        ParEngine {
            shared,
            watchdog: Some(watchdog),
        }
    }

    /// Arms a deterministic fault plan: worker faults fire at their
    /// offsets measured from *now*, and `badquery` poisoning applies to
    /// every later submission. Arm once, before the run's first query;
    /// an empty plan is a no-op (the fault plane stays fully inert).
    pub fn arm_faults(&self, plan: &FaultPlan, seed: u64) {
        if plan.is_empty() {
            return;
        }
        let fired = vec![false; plan.worker_faults.len()];
        let mut guard = self
            .shared
            .faults
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Some(FaultsRt {
            plan: plan.clone(),
            seed,
            t0: Instant::now(),
            fired,
        });
        drop(guard);
        self.shared.faults_armed.store(true, Ordering::Relaxed);
    }

    /// Workers the allocator may still count on: pool width minus
    /// permanently dead (panicked or unrespawnable) workers. Watchdog-
    /// recovered workers stay live; the elastic controller clamps its
    /// allocation to this so claims stay honest during degradation.
    pub fn live_workers(&self) -> usize {
        self.shared.n_workers - self.shared.lock_state().n_dead
    }

    /// Pool size (scheduling width).
    pub fn n_workers(&self) -> usize {
        self.shared.n_workers
    }

    /// Workers that have panicked and exited.
    pub fn dead_workers(&self) -> usize {
        self.shared.lock_state().n_dead
    }

    /// Wall-clock time since pool start, as simulation time (both
    /// backends report [`QueryResult`] stamps on the same axis).
    pub fn now(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(self.shared.epoch.elapsed().as_nanos() as u64)
    }

    /// Submits a query; workers are notified immediately. The result is
    /// fetched with [`ParEngine::wait_result`]. On a fully dead pool the
    /// query fails fast with [`QueryError::PoolDead`] instead of queuing
    /// forever.
    pub fn submit(&self, plan: Arc<Plan>, spec_tag: u32) -> QueryId {
        assert!(!plan.is_empty(), "cannot submit an empty plan");
        let submitted = self.now();
        let mut st = self.shared.lock_state();
        let qid = st.next_qid;
        st.next_qid += 1;
        st.stats.queries_submitted += 1;
        if st.n_dead == self.shared.n_workers {
            st.results.insert(qid, Err(QueryError::PoolDead));
            drop(st);
            self.shared.done.notify_all();
            return QueryId(qid);
        }
        if self.shared.faults_armed.load(Ordering::Relaxed) {
            // The poison draw locks the fault plan; take it outside the
            // state lock (the qid is already allocated, so the draw is
            // deterministic regardless of the interleaving).
            drop(st);
            if self.shared.query_poisoned(qid) {
                let mut st = self.shared.lock_state();
                st.results.insert(qid, Err(QueryError::BadQuery));
                drop(st);
                self.shared.done.notify_all();
                return QueryId(qid);
            }
            st = self.shared.lock_state();
            // The pool may have fully died while the lock was released.
            if st.n_dead == self.shared.n_workers {
                st.results.insert(qid, Err(QueryError::PoolDead));
                drop(st);
                self.shared.done.notify_all();
                return QueryId(qid);
            }
        }
        let dependents = plan.dependents();
        let nodes: Vec<ParNode> = plan
            .nodes()
            .iter()
            .map(|op| ParNode {
                n_parts: 0,
                remaining: 0,
                waiting_inputs: op.inputs().len() as u32,
                partials: Vec::new(),
                mat: None,
                part_worker: Vec::new(),
            })
            .collect();
        let pending = nodes.len();
        let ready: Vec<NodeId> = plan
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, op)| op.inputs().is_empty())
            .map(|(i, _)| NodeId(i as u16))
            .collect();
        st.queries.insert(
            qid,
            ParQuery {
                label: plan.label.clone(),
                spec_tag,
                plan,
                dependents,
                nodes,
                pending_nodes: pending,
                submitted,
                busy: SimDuration::ZERO,
            },
        );
        for node in ready {
            schedule_node(&mut st, &self.shared.base, self.shared.n_workers, qid, node);
        }
        drop(st);
        self.shared.work.notify_all();
        QueryId(qid)
    }

    /// Non-blocking result fetch: returns `qid`'s outcome if it has
    /// completed (or failed), `None` while still in flight. The serving
    /// dispatcher polls this for every in-flight request instead of
    /// blocking per query.
    pub fn try_result(&self, qid: QueryId) -> Option<Result<QueryResult, QueryError>> {
        self.shared.lock_state().results.remove(&qid.0)
    }

    /// Blocks until `qid` completes and returns its outcome. A query
    /// whose worker panicked resolves to `Err` instead of hanging.
    pub fn wait_result(&self, qid: QueryId) -> Result<QueryResult, QueryError> {
        let mut st = self.shared.lock_state();
        loop {
            if let Some(r) = st.results.remove(&qid.0) {
                return r;
            }
            // Unknown qid on a dead pool would otherwise wait forever.
            if !st.queries.contains_key(&qid.0) && st.n_dead == self.shared.n_workers {
                return Err(QueryError::PoolDead);
            }
            st = self.shared.wait_done(st);
        }
    }

    /// Unparks the first `n` live workers in wake order and parks the
    /// rest (the pool analogue of the simulator's cpuset grow/shrink). A
    /// worker mid-task finishes its task before re-checking its rank, so
    /// shrink has the same finish-current-slice semantics as the
    /// simulated actuation. Clamped to `1..=n_workers`.
    pub fn set_active(&self, n: usize) {
        let mut st = self.shared.lock_state();
        st.active = n.clamp(1, self.shared.n_workers);
        drop(st);
        self.shared.work.notify_all();
    }

    /// Currently unparked workers.
    pub fn active(&self) -> usize {
        self.shared.lock_state().active
    }

    /// Sets the unpark order: `order[r]` is the worker holding rank `r`,
    /// and ranks below the active count run. This is how a placement
    /// mode expresses *which* workers an allocation uses (dense packs
    /// neighbours, sparse strides across groups); without OS affinity
    /// syscalls in this workspace it is advisory. Workers absent from
    /// `order` keep ranks above every listed one (never scheduled while
    /// the listed workers cover the active count).
    pub fn set_wake_order(&self, order: &[usize]) {
        let n = self.shared.n_workers;
        let mut st = self.shared.lock_state();
        let mut next_rank = order.len();
        let mut seen = vec![false; n];
        for (rank, &w) in order.iter().enumerate() {
            assert!(w < n, "wake order names worker {w} of a {n}-wide pool");
            assert!(!seen[w], "wake order repeats worker {w}");
            seen[w] = true;
            st.rank_of[w] = rank;
        }
        for (w, seen) in seen.iter().enumerate() {
            if !seen {
                st.rank_of[w] = next_rank;
                next_rank += 1;
            }
        }
        drop(st);
        self.shared.work.notify_all();
    }

    /// Outstanding (queued) task count.
    pub fn queued_tasks(&self) -> usize {
        let st = self.shared.lock_state();
        st.global.len() + st.per_worker.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Number of in-flight queries.
    pub fn active_queries(&self) -> usize {
        self.shared.lock_state().queries.len()
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.shared.lock_state().stats
    }

    /// Total worker-busy wall nanoseconds so far (monotone; the pool
    /// controller differences it for its CPU-load signal).
    pub fn busy_ns(&self) -> u64 {
        self.shared.lock_state().busy_ns
    }

    /// Per-operator statistics snapshot.
    pub fn tomograph(&self) -> Tomograph {
        self.shared.lock_state().tomograph.clone()
    }

    /// Stops and joins every worker and the watchdog. Called by
    /// `Drop`; explicit calls are idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        // Watchdog first, so no new workers are respawned mid-join.
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        let drained: Vec<JoinHandle<()>> = {
            let mut handles = self
                .shared
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            handles.drain(..).collect()
        };
        for h in drained {
            let _ = h.join();
        }
    }
}

impl Drop for ParEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Length of the primary input an operator partitions over (mirrors the
/// simulated engine's `primary_input_len`).
fn primary_len_of(
    plan: &Plan,
    node: NodeId,
    mat_len: impl Fn(NodeId) -> usize,
    base: &BaseData,
) -> usize {
    match plan.node(node) {
        PhysOp::ScanSelect { col, .. } => base.rows(col.table),
        PhysOp::SelectAnd { candidates, .. } => mat_len(*candidates),
        PhysOp::SelectColCmp {
            candidates, left, ..
        } => match candidates {
            Some(c) => mat_len(*c),
            None => base.rows(left.table),
        },
        PhysOp::Project { positions, .. } => mat_len(*positions),
        PhysOp::ProjectSide { pairs, .. } => mat_len(*pairs),
        PhysOp::BinOp { left, .. } => mat_len(*left),
        PhysOp::AggrSum { values } => mat_len(*values),
        PhysOp::GroupAgg { keys, .. } => mat_len(*keys),
        PhysOp::JoinBuild { keys } => mat_len(*keys),
        PhysOp::JoinProbe { probe, .. } => mat_len(*probe),
        PhysOp::TopN { input, .. } => mat_len(*input),
    }
}

/// Splits a ready node into partition tasks and enqueues them, with the
/// same partition-count and lineage rules as the simulated engine
/// (`workers` here is the pool's scheduling width, not the active
/// count — results must not depend on the current allocation). Tasks
/// preferring a dead worker fall through to the global queue.
fn schedule_node(st: &mut State, base: &BaseData, workers: usize, qid: u64, node: NodeId) {
    let Some(q) = st.queries.get_mut(&qid) else {
        return; // query failed by a dying peer; nothing to schedule
    };
    let primary_len = {
        let nodes = &q.nodes;
        primary_len_of(
            &q.plan,
            node,
            |n| nodes[n.idx()].mat.as_ref().map_or(0, |m| m.len()),
            base,
        )
    };
    let n_parts = match q.plan.node(node) {
        PhysOp::TopN { .. } => 1,
        _ => n_parts_for(primary_len, workers),
    };
    let lineage: Option<&[Option<u32>]> =
        primary_input(&q.plan, node).map(|i| q.nodes[i.idx()].part_worker.as_slice());
    let prefs: Vec<Option<u32>> = (0..n_parts)
        .map(|part| match lineage {
            Some(pw) if !pw.is_empty() => pw[(part as usize * pw.len()) / n_parts as usize],
            _ => Some(((qid as u32).wrapping_add(part)) % workers as u32),
        })
        .collect();
    let nr = &mut q.nodes[node.idx()];
    nr.n_parts = n_parts;
    nr.remaining = n_parts;
    nr.partials = (0..n_parts).map(|_| None).collect();
    nr.part_worker = vec![None; n_parts as usize];
    for part in 0..n_parts {
        let task = ParTask {
            qid,
            node,
            part,
            n_parts,
            pref_worker: prefs[part as usize],
        };
        st.stats.tasks_created += 1;
        match task.pref_worker {
            Some(w) if (w as usize) < st.per_worker.len() && !st.dead[w as usize] => {
                st.per_worker[w as usize].push_back(task)
            }
            _ => st.global.push_back(task),
        }
    }
}

/// Worker-deque pop: own deque LIFO (depth-first, cache-hot consumer
/// first), then the global queue, then FIFO steals from peers.
fn pop_task(st: &mut State, idx: usize) -> Option<ParTask> {
    if let Some(t) = st.per_worker[idx].pop_back() {
        return Some(t);
    }
    if let Some(t) = st.global.pop_front() {
        return Some(t);
    }
    for i in 0..st.per_worker.len() {
        if i == idx {
            continue;
        }
        if let Some(t) = st.per_worker[i].pop_front() {
            st.stats.engine_steals += 1;
            return Some(t);
        }
    }
    None
}

/// Renders a `catch_unwind` payload for the [`QueryError`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Fails one query with a typed error and wakes its waiting client.
fn fail_query(shared: &Shared, st: &mut State, qid: u64, error: QueryError) {
    if st.queries.remove(&qid).is_some() {
        st.results.insert(qid, Err(error));
    }
    shared.done.notify_all();
}

/// The last live worker is gone: fail everything in flight fast
/// instead of queuing forever.
fn collapse_pool(st: &mut State) {
    let in_flight: Vec<u64> = st.queries.keys().copied().collect();
    for q in in_flight {
        st.queries.remove(&q);
        st.results.insert(q, Err(QueryError::PoolDead));
    }
    st.global.clear();
    for dq in &mut st.per_worker {
        dq.clear();
    }
}

/// The dead-worker path: marks `idx` dead, rehomes its queued tasks,
/// fails the query it was executing, and — when it was the last live
/// worker — fails everything else with [`QueryError::PoolDead`]. The
/// caller (the worker thread) returns right after. A *panicked* worker
/// is permanently dead: the panic was deterministic, so the watchdog
/// never respawns into it (`dead[idx]` is skipped in its sweep).
fn worker_dies(shared: &Shared, st: &mut State, idx: usize, qid: u64, error: QueryError) {
    eprintln!(
        "[par] worker {idx} died ({error}); pool degrades to {} live workers",
        shared.n_workers - st.n_dead - 1
    );
    st.running[idx] = None;
    st.dead[idx] = true;
    st.n_dead += 1;
    // Rehome tasks routed to this worker so lineage preferences cannot
    // strand them.
    let orphans = std::mem::take(&mut st.per_worker[idx]);
    st.global.extend(orphans);
    fail_query(shared, st, qid, error);
    if st.n_dead == shared.n_workers {
        collapse_pool(st);
    }
    shared.work.notify_all();
    shared.done.notify_all();
}

/// One watchdog recovery: supersede worker `idx`'s generation, requeue
/// the task it was holding (exactly once — only if its partial was
/// never committed and the query is still live), rehome its deque, and
/// respawn a replacement thread under the new generation.
fn recover_worker(shared: &Arc<Shared>, idx: usize, downtime: Duration) {
    let gen = {
        let mut st = shared.lock_state();
        if st.shutdown || st.dead[idx] {
            return;
        }
        st.worker_gen[idx] += 1;
        let gen = st.worker_gen[idx];
        if let Some(task) = st.running[idx].take() {
            let requeue = st.queries.get(&task.qid).is_some_and(|q| {
                let nr = &q.nodes[task.node.idx()];
                nr.partials.len() == task.n_parts as usize
                    && nr.partials[task.part as usize].is_none()
            });
            if requeue {
                st.global.push_back(task);
            }
        }
        let orphans = std::mem::take(&mut st.per_worker[idx]);
        st.global.extend(orphans);
        st.stats.engine_recoveries += 1;
        st.stats.recovery_ms += downtime.as_secs_f64() * 1e3;
        gen
    };
    eprintln!(
        "[par] watchdog: worker {idx} unresponsive for {downtime:?}; requeued its work, respawning (gen {gen})"
    );
    // Spawn outside the state lock.
    let spawned = {
        let worker = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("emca-worker{idx}g{gen}"))
            .spawn(move || worker_loop(worker, idx, gen))
    };
    match spawned {
        Ok(h) => push_handle(shared, h),
        Err(e) => {
            // Cannot heal this slot: degrade it permanently, like a
            // panicked worker.
            eprintln!("[par] failed to respawn worker {idx} ({e}); pool degrades");
            let mut st = shared.lock_state();
            if !st.dead[idx] {
                st.dead[idx] = true;
                st.n_dead += 1;
                if st.n_dead == shared.n_workers {
                    collapse_pool(&mut st);
                }
            }
        }
    }
    shared.work.notify_all();
    shared.done.notify_all();
}

/// The watchdog: sweeps worker heartbeats every `cfg.sweep`; a live,
/// not-permanently-dead worker whose heartbeat stayed frozen for
/// `cfg.stall_after` is recovered via [`recover_worker`].
fn watchdog_loop(shared: Arc<Shared>) {
    let sweep = shared.cfg.sweep.max(Duration::from_millis(1));
    let stall_after = shared.cfg.stall_after.max(sweep);
    let n = shared.n_workers;
    let mut seen: Vec<u64> = (0..n)
        .map(|i| shared.heartbeats[i].load(Ordering::Relaxed))
        .collect();
    let mut since: Vec<Instant> = vec![Instant::now(); n];
    loop {
        std::thread::sleep(sweep);
        let now = Instant::now();
        let mut stalled: Vec<(usize, Duration)> = Vec::new();
        {
            let st = shared.lock_state();
            if st.shutdown {
                return;
            }
            for i in 0..n {
                let beat = shared.heartbeats[i].load(Ordering::Relaxed);
                if beat != seen[i] {
                    seen[i] = beat;
                    since[i] = now;
                    continue;
                }
                if st.dead[i] {
                    continue;
                }
                let down = now.duration_since(since[i]);
                if down >= stall_after {
                    stalled.push((i, down));
                }
            }
        }
        for (idx, down) in stalled {
            recover_worker(&shared, idx, down);
            // The replacement starts a fresh heartbeat epoch.
            seen[idx] = shared.heartbeats[idx].load(Ordering::Relaxed);
            since[idx] = Instant::now();
        }
    }
}

/// The dedicated worker loop: park while ranked out of the allocation,
/// otherwise pop a task, snapshot its inputs under the lock, evaluate
/// outside it (under `catch_unwind`), and complete. `my_gen` is the
/// incarnation this thread was spawned under: a generation mismatch at
/// any lock acquisition means the watchdog superseded this worker (it
/// already requeued the in-flight task), so the thread exits without
/// committing anything.
fn worker_loop(shared: Arc<Shared>, idx: usize, my_gen: u64) {
    let poll = shared.worker_poll();
    loop {
        shared.heartbeats[idx].fetch_add(1, Ordering::Relaxed);
        // Injected faults fire between tasks, never mid-evaluation
        // (the idle-worker window; the post-pop window is below).
        match shared.due_fault(idx) {
            // Silent death: no bookkeeping, a frozen heartbeat is the
            // only trace. Recovery is the watchdog's job.
            Some(WorkerFaultKind::Kill) => return,
            Some(WorkerFaultKind::Stall(d)) => {
                std::thread::sleep(Duration::from_nanos(d.as_nanos()));
                continue; // re-beat; a long stall may have been superseded
            }
            None => {}
        }
        let mut st = shared.lock_state();
        if st.shutdown {
            return;
        }
        if st.worker_gen[idx] != my_gen {
            return; // superseded by a watchdog respawn
        }
        if st.live_rank(idx) >= st.active {
            drop(shared.wait_work_timeout(st, poll));
            continue;
        }
        let Some(task) = pop_task(&mut st, idx) else {
            drop(shared.wait_work_timeout(st, poll));
            continue;
        };
        st.running[idx] = Some(task);

        // ---- snapshot inputs under the lock ---------------------------
        let Some(q) = st.queries.get(&task.qid) else {
            st.running[idx] = None;
            continue; // query failed by a dying peer; drop its task
        };
        let plan = Arc::clone(&q.plan);
        let mats: Vec<Option<Mat>> = q.nodes.iter().map(|n| n.mat.clone()).collect();
        drop(st);

        // Post-pop fault window: a kill here strands the popped task in
        // `running[idx]`, exactly what the watchdog's exactly-once
        // requeue must recover without losing or duplicating it.
        match shared.due_fault(idx) {
            Some(WorkerFaultKind::Kill) => return,
            Some(WorkerFaultKind::Stall(d)) => {
                std::thread::sleep(Duration::from_nanos(d.as_nanos()))
            }
            None => {}
        }

        // ---- evaluate outside the lock --------------------------------
        let op = plan.node(task.node);
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let inputs = Snapshot {
                base: &shared.base,
                mats: &mats,
            };
            let primary_len = primary_len_of(
                &plan,
                task.node,
                |n| mats[n.idx()].as_ref().map_or(0, |m| m.len()),
                &shared.base,
            );
            let (start, end) = part_range(primary_len, task.part, task.n_parts);
            evaluate_partition_on(op, &inputs, start, end)
        }));
        let mut elapsed = SimDuration::from_nanos(t0.elapsed().as_nanos() as u64);
        let partial = match outcome {
            Ok(p) => p,
            Err(payload) => {
                st = shared.lock_state();
                if st.worker_gen[idx] != my_gen {
                    // Superseded mid-evaluation: the requeued copy of
                    // this task will hit the same deterministic panic on
                    // the replacement worker, which does the bookkeeping.
                    return;
                }
                worker_dies(
                    &shared,
                    &mut st,
                    idx,
                    task.qid,
                    QueryError::WorkerPanicked {
                        op: op.mal_name(),
                        message: panic_message(payload),
                    },
                );
                return;
            }
        };

        // ---- complete -------------------------------------------------
        st = shared.lock_state();
        if st.worker_gen[idx] != my_gen {
            // Superseded while evaluating (a watchdog false positive on
            // a slow partition): the task was requeued, so drop this
            // partial — it must commit exactly once, from whichever
            // copy reaches here first under a live generation.
            return;
        }
        st.running[idx] = None;
        st.stats.tasks_executed += 1;
        let Some(q) = st.queries.get_mut(&task.qid) else {
            // Query failed while this valid partition was in flight;
            // count the work and move on.
            st.busy_ns += elapsed.as_nanos();
            continue;
        };
        let nr = &mut q.nodes[task.node.idx()];
        if nr.partials.len() != task.n_parts as usize || nr.partials[task.part as usize].is_some() {
            // A requeued duplicate raced the original commit (or the
            // node is already assembling): first commit won, this copy
            // is dropped without touching `remaining`.
            st.busy_ns += elapsed.as_nanos();
            continue;
        }
        nr.part_worker[task.part as usize] = Some(idx as u32);
        nr.partials[task.part as usize] = Some(partial);
        nr.remaining -= 1;
        let node_done = nr.remaining == 0;
        let mat = if node_done {
            // Assemble outside the lock too: only the last completer of a
            // node reaches here, so the taken partials race with nobody.
            let partials = std::mem::take(&mut nr.partials);
            drop(st);
            let t1 = Instant::now();
            let assembled = catch_unwind(AssertUnwindSafe(|| {
                let inputs = Snapshot {
                    base: &shared.base,
                    mats: &mats,
                };
                assemble_parts(op, &inputs, partials, None)
            }));
            elapsed += SimDuration::from_nanos(t1.elapsed().as_nanos() as u64);
            st = shared.lock_state();
            match assembled {
                Ok(m) => Some(m),
                Err(payload) => {
                    let error = QueryError::WorkerPanicked {
                        op: op.mal_name(),
                        message: panic_message(payload),
                    };
                    if st.worker_gen[idx] != my_gen {
                        // The partials are consumed — nobody else can
                        // finish this node — so even a superseded worker
                        // must fail the query before exiting, or its
                        // client hangs.
                        fail_query(&shared, &mut st, task.qid, error);
                        return;
                    }
                    worker_dies(&shared, &mut st, idx, task.qid, error);
                    return;
                }
            }
        } else {
            None
        };
        st.busy_ns += elapsed.as_nanos();
        st.tomograph.record(op.mal_name(), elapsed);
        let Some(q) = st.queries.get_mut(&task.qid) else {
            continue;
        };
        q.busy += elapsed;
        if let Some(mat) = mat {
            // The one-finalizer exception: this worker took the node's
            // partials, so it must commit the mat and schedule the
            // dependents even if a watchdog supersession landed during
            // assembly — then exit.
            finalize_node(&mut st, &shared, task.qid, task.node, mat);
            if st.worker_gen[idx] != my_gen {
                return;
            }
        }
    }
}

/// Commits a node's assembled mat, schedules newly ready dependents, and
/// completes the query when it was the last pending node.
fn finalize_node(st: &mut State, shared: &Shared, qid: u64, node: NodeId, mat: Mat) {
    let Some(q) = st.queries.get_mut(&qid) else {
        return;
    };
    q.nodes[node.idx()].mat = Some(mat);
    q.pending_nodes -= 1;
    let deps = q.dependents[node.idx()].clone();
    let ready: Vec<NodeId> = deps
        .into_iter()
        .filter(|d| {
            let nr = &mut q.nodes[d.idx()];
            nr.waiting_inputs -= 1;
            nr.waiting_inputs == 0
        })
        .collect();
    let scheduled = !ready.is_empty();
    for d in ready {
        schedule_node(st, &shared.base, shared.n_workers, qid, d);
    }
    if scheduled {
        shared.work.notify_all();
    }

    let done = st.queries.get(&qid).is_some_and(|q| q.pending_nodes == 0);
    if done {
        let Some(q) = st.queries.remove(&qid) else {
            return;
        };
        let root = q.plan.root();
        let outcome = match q.nodes[root.idx()].mat.clone() {
            Some(result) => {
                st.stats.queries_completed += 1;
                let now = SimTime::ZERO
                    + SimDuration::from_nanos(shared.epoch.elapsed().as_nanos() as u64);
                // Keep responses strictly positive, like the simulated engine.
                let finished = now.max(q.submitted + SimDuration::from_nanos(1));
                Ok(QueryResult {
                    qid: QueryId(qid),
                    label: q.label,
                    spec_tag: q.spec_tag,
                    submitted: q.submitted,
                    finished,
                    traffic: Default::default(),
                    busy: q.busy,
                    result,
                })
            }
            None => Err(QueryError::Internal("root mat missing at completion")),
        };
        st.results.insert(qid, outcome);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::queries::{build_query, QuerySpec};
    use crate::tpch::{TpchData, TpchScale};

    fn tiny_base() -> Arc<BaseData> {
        Arc::new(BaseData::from_tpch(&TpchData::generate(
            TpchScale::test_tiny(),
        )))
    }

    fn digest(r: &QueryResult) -> String {
        format!("{}:{:?}", r.label, r.result)
    }

    fn run_specs(engine: &ParEngine, specs: &[QuerySpec]) -> Vec<String> {
        specs
            .iter()
            .map(|s| {
                let qid = engine.submit(Arc::new(build_query(s)), s.tag());
                digest(&engine.wait_result(qid).expect("query should complete"))
            })
            .collect()
    }

    #[test]
    fn queries_complete_and_are_deterministic() {
        let base = tiny_base();
        let cfg = ParEngineConfig {
            n_workers: 16,
            initial_active: 16,
            ..ParEngineConfig::default()
        };
        let specs = [
            QuerySpec::Q6 { variant: 0 },
            QuerySpec::Tpch {
                number: 1,
                variant: 0,
            },
            QuerySpec::Tpch {
                number: 14,
                variant: 0,
            },
        ];
        let a = run_specs(&ParEngine::new(cfg, Arc::clone(&base)), &specs);
        let b = run_specs(&ParEngine::new(cfg, Arc::clone(&base)), &specs);
        assert_eq!(a, b, "same pool width must give identical results");
        let stats = {
            let engine = ParEngine::new(cfg, base);
            run_specs(&engine, &specs);
            engine.stats()
        };
        assert_eq!(stats.queries_submitted, 3);
        assert_eq!(stats.queries_completed, 3);
        assert!(stats.tasks_executed >= stats.queries_completed);
    }

    #[test]
    fn active_count_changes_timing_not_answers() {
        let base = tiny_base();
        let wide = ParEngine::new(
            ParEngineConfig {
                n_workers: 16,
                initial_active: 16,
                ..ParEngineConfig::default()
            },
            Arc::clone(&base),
        );
        let narrow = ParEngine::new(
            ParEngineConfig {
                n_workers: 16,
                initial_active: 1,
                ..ParEngineConfig::default()
            },
            base,
        );
        narrow.set_wake_order(&[0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]);
        let specs = [
            QuerySpec::Q6 { variant: 0 },
            QuerySpec::Tpch {
                number: 4,
                variant: 0,
            },
        ];
        assert_eq!(
            run_specs(&wide, &specs),
            run_specs(&narrow, &specs),
            "allocation must not leak into results"
        );
        assert_eq!(narrow.active(), 1);
        narrow.set_active(8);
        assert_eq!(narrow.active(), 8);
        narrow.set_active(0);
        assert_eq!(narrow.active(), 1, "active count clamps to 1");
    }

    #[test]
    fn concurrent_clients_all_finish() {
        let base = tiny_base();
        let engine = Arc::new(ParEngine::new(
            ParEngineConfig {
                n_workers: 8,
                initial_active: 8,
                ..ParEngineConfig::default()
            },
            base,
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        let spec = QuerySpec::Q6 { variant: 0 };
                        let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
                        let r = engine.wait_result(qid).expect("query should complete");
                        assert!(r.finished > r.submitted);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.stats().queries_completed, 12);
        assert_eq!(engine.active_queries(), 0);
    }

    /// A panicking worker must fail its query with a typed error, not
    /// poison the mutex: the engine stays queryable, and once the last
    /// worker dies submissions fail fast with `PoolDead`.
    #[test]
    fn worker_panic_degrades_without_poisoning() {
        // A catalog missing a column Q6 needs: evaluation panics inside
        // the worker, under catch_unwind.
        let mut data = TpchData::generate(TpchScale::test_tiny());
        for table in &mut data.tables {
            if table.name == "lineitem" {
                table.columns.retain(|c| c.name != "l_extendedprice");
            }
        }
        let base = Arc::new(BaseData::from_tpch(&data));
        let engine = ParEngine::new(
            ParEngineConfig {
                n_workers: 1,
                initial_active: 1,
                ..ParEngineConfig::default()
            },
            base,
        );
        let spec = QuerySpec::Q6 { variant: 0 };
        let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
        match engine.wait_result(qid) {
            Err(QueryError::WorkerPanicked { message, .. }) => {
                assert!(message.contains("l_extendedprice"), "got: {message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // No poisoning: every accessor still works after the panic.
        assert_eq!(engine.dead_workers(), 1);
        assert_eq!(engine.active_queries(), 0);
        let _ = engine.stats();
        // The single worker was the whole pool: everything now fails
        // fast instead of queuing forever.
        let qid2 = engine.submit(Arc::new(build_query(&spec)), spec.tag());
        assert!(matches!(
            engine.wait_result(qid2),
            Err(QueryError::PoolDead)
        ));
        assert!(engine.try_result(qid2).is_none(), "error was consumed");
        assert_eq!(engine.live_workers(), 0, "a panicked worker stays dead");
    }

    /// The watchdog must recover injected worker kills with zero lost
    /// and zero duplicated queries: every submission resolves `Ok` with
    /// the fault-free digest, and the pool heals back to full strength
    /// instead of degrading.
    #[test]
    fn killed_workers_recover_without_losing_queries() {
        let base = tiny_base();
        let cfg = ParEngineConfig {
            n_workers: 8,
            initial_active: 8,
            stall_after: Duration::from_millis(40),
            sweep: Duration::from_millis(10),
        };
        let expected = {
            let engine = ParEngine::new(cfg, Arc::clone(&base));
            let spec = QuerySpec::Q6 { variant: 0 };
            let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
            digest(&engine.wait_result(qid).expect("fault-free run completes"))
        };
        let engine = Arc::new(ParEngine::new(cfg, base));
        engine.arm_faults(
            &FaultPlan::default()
                .with_kill(2, SimDuration::from_millis(10))
                .with_kill(5, SimDuration::from_millis(20)),
            42,
        );
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let t0 = Instant::now();
                    let mut n = 0u64;
                    // Keep queries flowing across both kills and the
                    // recoveries (~10/20ms kills + 40ms detection).
                    while t0.elapsed() < Duration::from_millis(150) {
                        let spec = QuerySpec::Q6 { variant: 0 };
                        let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
                        let r = engine
                            .wait_result(qid)
                            .expect("query lost across a worker kill");
                        assert_eq!(digest(&r), expected, "recovery corrupted a result");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: u64 = clients
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .sum();
        // Both kills fire whether or not a query is in flight; wait for
        // the watchdog to notice and respawn both victims.
        let t0 = Instant::now();
        while engine.stats().engine_recoveries < 2 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "watchdog never recovered the killed workers"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = engine.stats();
        assert_eq!(
            stats.queries_completed, total,
            "every submitted query completed exactly once"
        );
        assert_eq!(stats.queries_submitted, total);
        assert!(stats.mttr_ms() > 0.0 && stats.mttr_ms().is_finite());
        assert_eq!(
            engine.live_workers(),
            8,
            "killed workers were respawned, not declared dead"
        );
        assert_eq!(engine.dead_workers(), 0);
        // The healed pool still serves, and still gives the same answer.
        let spec = QuerySpec::Q6 { variant: 0 };
        let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
        let r = engine.wait_result(qid).expect("post-recovery query");
        assert_eq!(digest(&r), expected);
    }

    /// `badquery` poisoning is deterministic per qid and surfaces as a
    /// typed, non-retryable error; unpoisoned queries are untouched.
    #[test]
    fn badquery_poisons_deterministically() {
        let base = tiny_base();
        let cfg = ParEngineConfig {
            n_workers: 4,
            initial_active: 4,
            ..ParEngineConfig::default()
        };
        let run = |seed: u64| -> Vec<bool> {
            let engine = ParEngine::new(cfg, Arc::clone(&base));
            engine.arm_faults(&FaultPlan::default().with_badquery(0.3), seed);
            (0..40)
                .map(|_| {
                    let spec = QuerySpec::Q6 { variant: 0 };
                    let qid = engine.submit(Arc::new(build_query(&spec)), spec.tag());
                    match engine.wait_result(qid) {
                        Ok(_) => false,
                        Err(QueryError::BadQuery) => true,
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                })
                .collect()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed must poison the same qids");
        assert!(
            a.iter().any(|&p| p),
            "rate 0.3 over 40 queries poisons some"
        );
        assert!(!a.iter().all(|&p| p), "…but not all");
        assert!(!QueryError::BadQuery.is_retryable());
        assert!(QueryError::PoolDead.is_retryable());
    }
}
