//! The operator cost model: CPU cycles per tuple by operator kind.
//!
//! These constants calibrate the compute side of the simulation; the
//! memory side is charged through `numa_sim` segment accesses. Values
//! are *pure-execution* cycles for vectorised column stores on the
//! Opteron generation: cache/DRAM stall time must NOT be folded in here,
//! because the machine model charges every memory access separately —
//! double-counting it as cycles made the simulated workload
//! compute-bound, when the paper's measured workload saturates the
//! memory controllers (Fig. 14(b)) and the interconnect (Fig. 4(c)).

/// Per-tuple cycles for a predicate scan (`thetasubselect`).
pub const SCAN_SELECT: u64 = 1;
/// Per-tuple cycles for a candidate-refining select (`subselect`).
pub const SELECT_AND: u64 = 2;
/// Per-tuple cycles for a column-vs-column compare select.
pub const SELECT_COL_CMP: u64 = 2;
/// Per-tuple cycles for positional projection (`algebra.projection`).
pub const PROJECT: u64 = 1;
/// Per-tuple cycles for element-wise arithmetic (`batcalc.*`).
pub const BIN_OP: u64 = 1;
/// Per-tuple cycles for a sum aggregate (`aggr.sum`).
pub const AGGR_SUM: u64 = 1;
/// Per-tuple cycles for hash group-by aggregation.
pub const GROUP_AGG: u64 = 6;
/// Per-tuple cycles for hash-join build.
pub const JOIN_BUILD: u64 = 10;
/// Per-tuple cycles for hash-join probe.
pub const JOIN_PROBE: u64 = 11;
/// Per-tuple cycles for top-n selection.
pub const TOP_N: u64 = 8;
/// Per-entry cycles for finalize/merge stages (`mat.pack`).
pub const MERGE: u64 = 4;

/// Rows a task advances per charging quantum. One quantum touches one
/// input segment's worth of rows, so charging granularity matches the
/// cache model granularity.
pub const ROWS_PER_QUANTUM: usize = 8192;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn hash_ops_cost_more_than_scans() {
        assert!(JOIN_BUILD > SCAN_SELECT);
        assert!(JOIN_PROBE > PROJECT);
        assert!(GROUP_AGG > AGGR_SUM);
    }

    #[test]
    fn quantum_matches_segment_rows() {
        assert_eq!(
            ROWS_PER_QUANTUM as u64,
            numa_sim::SEG_BYTES / crate::storage::VALUE_BYTES
        );
    }
}
