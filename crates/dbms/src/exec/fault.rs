//! Deterministic fault injection: the parsed `faults=` spec field.
//!
//! A [`FaultPlan`] describes *when* the run misbehaves on purpose:
//! worker kills (`panic:worker=3@2s`), worker stalls
//! (`stall:worker=5@1s:dur=500ms`) and query poisoning
//! (`badquery:rate=0.01`). The plan itself is pure data — each backend
//! interprets it in its own time domain (simulated time for the sim
//! engine, wall time since [`crate::exec::par::ParEngine::arm_faults`]
//! for the threads pool) — so the same spec string drives both.
//!
//! Determinism: worker faults fire at fixed plan times; query poisoning
//! draws from a per-(seed, qid) seeded [`StdRng`], so a sim run with a
//! fault plan is still a pure function of the spec (byte-identical CSVs
//! across runs), and the threads backend poisons the *same* query ids.

use emca_metrics::SimDuration;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// What an injected worker fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkerFaultKind {
    /// The worker dies silently — no typed error, no pool bookkeeping;
    /// recovery (watchdog respawn on threads, timed revive on sim) is
    /// the mechanism under test.
    Kill,
    /// The worker goes dark for the given duration without making
    /// progress or heartbeating, then resumes.
    Stall(SimDuration),
}

/// One scheduled worker fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkerFault {
    /// Pool index of the victim (out-of-range indices are ignored, so a
    /// plan written for the 16-core machine stays valid under
    /// `EMCA_THREADS`-capped pools).
    pub worker: u32,
    /// When the fault fires, measured from run start.
    pub at: SimDuration,
    /// What happens.
    pub kind: WorkerFaultKind,
}

/// A deterministic fault-injection plan (the `faults=` spec field).
///
/// The empty/default plan is fully inert: every injection site checks
/// [`FaultPlan::is_empty`] (or an absent plan) first, so runs without a
/// `faults=` key take the exact pre-fault-plane code paths.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled worker kills and stalls, in spec order.
    pub worker_faults: Vec<WorkerFault>,
    /// Probability that a submitted query is poisoned at the front door
    /// (fails instantly with [`crate::exec::par::QueryError::BadQuery`]).
    /// `0.0` disables poisoning.
    pub badquery_rate: f64,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.worker_faults.is_empty() && self.badquery_rate <= 0.0
    }

    /// Adds a worker kill at `at`.
    pub fn with_kill(mut self, worker: u32, at: SimDuration) -> Self {
        self.worker_faults.push(WorkerFault {
            worker,
            at,
            kind: WorkerFaultKind::Kill,
        });
        self
    }

    /// Adds a worker stall of `dur` starting at `at`.
    pub fn with_stall(mut self, worker: u32, at: SimDuration, dur: SimDuration) -> Self {
        self.worker_faults.push(WorkerFault {
            worker,
            at,
            kind: WorkerFaultKind::Stall(dur),
        });
        self
    }

    /// Sets the query-poisoning rate.
    pub fn with_badquery(mut self, rate: f64) -> Self {
        self.badquery_rate = rate;
        self
    }

    /// Deterministically decides whether query `qid` of the run seeded
    /// by `seed` is poisoned. Pure in (plan, seed, qid): both backends
    /// poison the same ids, and reruns poison the same ids.
    pub fn bad_query(&self, seed: u64, qid: u64) -> bool {
        if self.badquery_rate <= 0.0 {
            return false;
        }
        // One short-lived rng per decision keeps the draw independent of
        // submission order (concurrent clients race to submit on the
        // threads backend; a shared rng stream would make poisoning
        // racy there and order-coupled on the sim).
        let mut rng = StdRng::seed_from_u64(seed ^ qid.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let draw = rng.random_range(0..1_000_000usize) as f64 / 1e6;
        draw < self.badquery_rate
    }

    /// Parses the `faults=` spec syntax: comma-separated entries of
    /// `panic:worker=<n>@<t>`, `stall:worker=<n>@<t>:dur=<d>`, and
    /// `badquery:rate=<p>`, with durations spelled `500ms` or `2s`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, params) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry {entry:?}: expected kind:params"))?;
            match kind {
                "panic" => {
                    let (worker, at) = parse_worker_at(params, entry)?;
                    plan.worker_faults.push(WorkerFault {
                        worker,
                        at,
                        kind: WorkerFaultKind::Kill,
                    });
                }
                "stall" => {
                    let (worker_part, dur_part) = params
                        .split_once(':')
                        .ok_or_else(|| format!("fault entry {entry:?}: stall needs :dur=<d>"))?;
                    let (worker, at) = parse_worker_at(worker_part, entry)?;
                    let dur = dur_part
                        .strip_prefix("dur=")
                        .and_then(parse_dur)
                        .ok_or_else(|| {
                            format!("fault entry {entry:?}: bad dur (want dur=500ms)")
                        })?;
                    plan.worker_faults.push(WorkerFault {
                        worker,
                        at,
                        kind: WorkerFaultKind::Stall(dur),
                    });
                }
                "badquery" => {
                    let rate: f64 = params
                        .strip_prefix("rate=")
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| {
                            format!("fault entry {entry:?}: bad rate (want rate=0.01)")
                        })?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault entry {entry:?}: rate must be in [0, 1]"));
                    }
                    plan.badquery_rate = rate;
                }
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (known: panic, stall, badquery)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

fn parse_worker_at(params: &str, entry: &str) -> Result<(u32, SimDuration), String> {
    let rest = params
        .strip_prefix("worker=")
        .ok_or_else(|| format!("fault entry {entry:?}: expected worker=<n>@<t>"))?;
    let (worker, at) = rest
        .split_once('@')
        .ok_or_else(|| format!("fault entry {entry:?}: expected worker=<n>@<t>"))?;
    let worker: u32 = worker
        .parse()
        .map_err(|_| format!("fault entry {entry:?}: bad worker index {worker:?}"))?;
    let at = parse_dur(at)
        .ok_or_else(|| format!("fault entry {entry:?}: bad time {at:?} (want e.g. 2s or 500ms)"))?;
    Ok((worker, at))
}

fn parse_dur(s: &str) -> Option<SimDuration> {
    let (num, scale) = if let Some(ms) = s.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(secs) = s.strip_suffix('s') {
        (secs, 1.0)
    } else {
        return None;
    };
    let v: f64 = num.parse().ok()?;
    if !(v.is_finite() && v >= 0.0) {
        return None;
    }
    Some(SimDuration::from_secs_f64(v * scale))
}

fn fmt_dur(d: SimDuration, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let ms = d.as_secs_f64() * 1e3;
    if ms.fract() == 0.0 && (ms as u64) % 1000 != 0 {
        write!(f, "{}ms", ms as u64)
    } else {
        // Integral seconds render bare ("2s"); fractional values keep
        // their digits ("0.0015s") so Display always re-parses exactly.
        let secs = d.as_secs_f64();
        if secs.fract() == 0.0 {
            write!(f, "{}s", secs as u64)
        } else {
            write!(f, "{secs}s")
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            Ok(())
        };
        for wf in &self.worker_faults {
            sep(f)?;
            match wf.kind {
                WorkerFaultKind::Kill => {
                    write!(f, "panic:worker={}@", wf.worker)?;
                    fmt_dur(wf.at, f)?;
                }
                WorkerFaultKind::Stall(dur) => {
                    write!(f, "stall:worker={}@", wf.worker)?;
                    fmt_dur(wf.at, f)?;
                    write!(f, ":dur=")?;
                    fmt_dur(dur, f)?;
                }
            }
        }
        if self.badquery_rate > 0.0 {
            sep(f)?;
            write!(f, "badquery:rate={}", self.badquery_rate)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trips() {
        let s = "panic:worker=3@2s,stall:worker=5@1s:dur=500ms,badquery:rate=0.01";
        let plan = FaultPlan::parse(s).expect("parses");
        assert_eq!(plan.worker_faults.len(), 2);
        assert_eq!(plan.worker_faults[0].worker, 3);
        assert_eq!(plan.worker_faults[0].at, SimDuration::from_secs(2));
        assert_eq!(plan.worker_faults[0].kind, WorkerFaultKind::Kill);
        assert_eq!(
            plan.worker_faults[1].kind,
            WorkerFaultKind::Stall(SimDuration::from_millis(500))
        );
        assert_eq!(plan.badquery_rate, 0.01);
        assert_eq!(plan.to_string(), s, "canonical display round-trips");
        let reparsed = FaultPlan::parse(&plan.to_string()).expect("display re-parses");
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn fractional_and_bare_second_durations_round_trip() {
        for s in [
            "panic:worker=0@150ms",
            "panic:worker=0@10s",
            "stall:worker=1@0s:dur=2s",
        ] {
            let plan = FaultPlan::parse(s).expect("parses");
            assert_eq!(
                FaultPlan::parse(&plan.to_string()).expect("re-parses"),
                plan
            );
        }
    }

    #[test]
    fn malformed_entries_are_rejected() {
        for bad in [
            "panic",
            "panic:worker=3",
            "panic:worker=x@2s",
            "panic:worker=3@2m",
            "stall:worker=5@1s",
            "badquery:rate=1.5",
            "flood:worker=1@1s",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::parse("").expect("empty parses");
        assert!(plan.is_empty());
        assert!(!plan.bad_query(42, 0));
        assert_eq!(plan.to_string(), "");
    }

    #[test]
    fn bad_query_is_deterministic_and_rate_shaped() {
        let plan = FaultPlan::default().with_badquery(0.1);
        let hits: Vec<bool> = (0..10_000).map(|q| plan.bad_query(42, q)).collect();
        let again: Vec<bool> = (0..10_000).map(|q| plan.bad_query(42, q)).collect();
        assert_eq!(hits, again, "same seed + qid must redraw identically");
        let rate = hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64;
        assert!(
            (0.05..0.2).contains(&rate),
            "empirical poison rate {rate} far from 0.1"
        );
        let other: Vec<bool> = (0..10_000).map(|q| plan.bad_query(43, q)).collect();
        assert_ne!(hits, other, "different seeds must poison different ids");
    }
}
