//! MAL-style physical plans.
//!
//! A [`Plan`] is a DAG of materialising operators in topological order
//! (MonetDB's dataflow over MAL instructions). Every operator is split
//! horizontally into partition tasks at execution time — the Volcano
//! horizontal parallelism the paper assumes ("the execution of an
//! operator at a time spans many threads").

use std::fmt;

/// Index of a plan node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// As a usize index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A base-column reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Table name.
    pub table: &'static str,
    /// Column name.
    pub column: &'static str,
}

/// Scalar predicates over one column.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarPred {
    /// `col op constant` (f64 domain; i64 columns are compared as f64,
    /// which is exact for the value ranges generated).
    Cmp(CmpOp, f64),
    /// `lo <= col <= hi`.
    Between(f64, f64),
    /// `col IN (set)` over integer codes (the paper highlights Q19/Q22's
    /// IN predicates).
    InSet(Vec<i64>),
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Applies the comparison.
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Eq => l == r,
            CmpOp::Ge => l >= r,
            CmpOp::Gt => l > r,
            CmpOp::Ne => l != r,
        }
    }
}

/// Element-wise arithmetic (`batcalc.*`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `l + r`
    Add,
    /// `l - r`
    Sub,
    /// `l * r`
    Mul,
    /// `l * (1 - r)` — the ubiquitous TPC-H revenue form.
    MulOneMinus,
}

impl ArithOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            ArithOp::Add => l + r,
            ArithOp::Sub => l - r,
            ArithOp::Mul => l * r,
            ArithOp::MulOneMinus => l * (1.0 - r),
        }
    }
}

/// Aggregate kinds for group-by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of the value column.
    Sum,
    /// Count of rows per group.
    Count,
}

/// Join side selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The probe input of the join.
    Probe,
    /// The build input of the join.
    Build,
}

/// The physical operators.
#[derive(Clone, Debug)]
pub enum PhysOp {
    /// `algebra.thetasubselect`: positions of `col` rows satisfying
    /// `pred`.
    ScanSelect {
        /// Scanned column.
        col: ColRef,
        /// Predicate.
        pred: ScalarPred,
    },
    /// `algebra.subselect`: refine a candidate position list by a
    /// predicate on another column of the same table.
    SelectAnd {
        /// Candidate positions (a `Pos` node).
        candidates: NodeId,
        /// Column to test.
        col: ColRef,
        /// Predicate.
        pred: ScalarPred,
    },
    /// Candidate-refining select comparing two columns of the same table
    /// (Q4/Q21's `l_commitdate < l_receiptdate`).
    SelectColCmp {
        /// Candidate positions, or `None` for a full scan.
        candidates: Option<NodeId>,
        /// Table scanned (both columns).
        left: ColRef,
        /// Right column.
        right: ColRef,
        /// Comparison.
        op: CmpOp,
    },
    /// `algebra.projection`: fetch `col[positions]`.
    Project {
        /// Positions (a `Pos` node).
        positions: NodeId,
        /// Fetched column.
        col: ColRef,
    },
    /// Fetch a column through one side of join pairs.
    ProjectSide {
        /// The `Pairs` node.
        pairs: NodeId,
        /// Which side's positions to use.
        side: Side,
        /// Fetched column (must belong to that side's table).
        col: ColRef,
    },
    /// `batcalc.*`: element-wise arithmetic over two aligned value nodes.
    BinOp {
        /// Left values.
        left: NodeId,
        /// Right values.
        right: NodeId,
        /// Operation.
        op: ArithOp,
    },
    /// `aggr.sum`: scalar sum of a value node.
    AggrSum {
        /// Summed values.
        values: NodeId,
    },
    /// Hash group-by aggregation over aligned key/value nodes.
    GroupAgg {
        /// Group keys (i64 values node).
        keys: NodeId,
        /// Aggregated values (ignored for `Count`).
        values: Option<NodeId>,
        /// Aggregate.
        agg: AggKind,
    },
    /// Hash-join build over an i64 key node.
    JoinBuild {
        /// Build keys.
        keys: NodeId,
    },
    /// Hash-join probe: emits base-position pairs.
    JoinProbe {
        /// The built table (a `Hash` node).
        build: NodeId,
        /// Probe keys (i64 values node).
        probe: NodeId,
    },
    /// Top-N over a groups node by aggregate value (descending).
    TopN {
        /// Input groups.
        input: NodeId,
        /// How many to keep.
        n: usize,
    },
}

impl PhysOp {
    /// The MAL-style name used by the Tomograph trace (Fig. 6).
    pub fn mal_name(&self) -> &'static str {
        match self {
            PhysOp::ScanSelect { .. } => "algebra.thetasubselect",
            PhysOp::SelectAnd { .. } => "algebra.subselect",
            PhysOp::SelectColCmp { .. } => "algebra.subselect2",
            PhysOp::Project { .. } => "algebra.projection",
            PhysOp::ProjectSide { .. } => "algebra.projectionpath",
            PhysOp::BinOp { .. } => "batcalc.*",
            PhysOp::AggrSum { .. } => "aggr.sum",
            PhysOp::GroupAgg { .. } => "group.subaggr",
            PhysOp::JoinBuild { .. } => "algebra.joinbuild",
            PhysOp::JoinProbe { .. } => "algebra.join",
            PhysOp::TopN { .. } => "algebra.firstn",
        }
    }

    /// Plan-node inputs of the operator.
    pub fn inputs(&self) -> Vec<NodeId> {
        match self {
            PhysOp::ScanSelect { .. } => vec![],
            PhysOp::SelectAnd { candidates, .. } => vec![*candidates],
            PhysOp::SelectColCmp { candidates, .. } => candidates.iter().copied().collect(),
            PhysOp::Project { positions, .. } => vec![*positions],
            PhysOp::ProjectSide { pairs, .. } => vec![*pairs],
            PhysOp::BinOp { left, right, .. } => vec![*left, *right],
            PhysOp::AggrSum { values } => vec![*values],
            PhysOp::GroupAgg { keys, values, .. } => {
                let mut v = vec![*keys];
                v.extend(values.iter().copied());
                v
            }
            PhysOp::JoinBuild { keys } => vec![*keys],
            PhysOp::JoinProbe { build, probe } => vec![*build, *probe],
            PhysOp::TopN { input, .. } => vec![*input],
        }
    }
}

/// A topologically ordered operator DAG. The last node is the query
/// result.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    nodes: Vec<PhysOp>,
    /// Human label (query name).
    pub label: String,
}

impl Plan {
    /// An empty plan with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Plan {
            nodes: Vec::new(),
            label: label.into(),
        }
    }

    /// Appends an operator; inputs must reference earlier nodes
    /// (validated).
    pub fn add(&mut self, op: PhysOp) -> NodeId {
        let id = NodeId(self.nodes.len() as u16);
        for input in op.inputs() {
            assert!(
                input.idx() < self.nodes.len(),
                "plan not topologically ordered: {input:?} referenced by node {id:?}"
            );
        }
        self.nodes.push(op);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the plan has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The operator at `id`.
    pub fn node(&self, id: NodeId) -> &PhysOp {
        &self.nodes[id.idx()]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[PhysOp] {
        &self.nodes
    }

    /// The result node.
    pub fn root(&self) -> NodeId {
        assert!(!self.nodes.is_empty(), "empty plan has no root");
        NodeId(self.nodes.len() as u16 - 1)
    }

    /// `dependents[i]` = nodes that consume node `i`'s output.
    pub fn dependents(&self) -> Vec<Vec<NodeId>> {
        let mut deps = vec![Vec::new(); self.nodes.len()];
        for (i, op) in self.nodes.iter().enumerate() {
            for input in op.inputs() {
                deps[input.idx()].push(NodeId(i as u16));
            }
        }
        deps
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan {} ({} ops):", self.label, self.nodes.len())?;
        for (i, op) in self.nodes.iter().enumerate() {
            writeln!(f, "  X_{i} := {}", op.mal_name())?;
        }
        Ok(())
    }
}

/// Shorthand constructor for a [`ColRef`].
pub fn col(table: &'static str, column: &'static str) -> ColRef {
    ColRef { table, column }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3 MAL plan for Q6, op for op.
    fn q6_plan() -> Plan {
        let mut p = Plan::new("q06");
        let x1 = p.add(PhysOp::ScanSelect {
            col: col("lineitem", "l_quantity"),
            pred: ScalarPred::Cmp(CmpOp::Lt, 24.0),
        });
        let x2 = p.add(PhysOp::SelectAnd {
            candidates: x1,
            col: col("lineitem", "l_shipdate"),
            pred: ScalarPred::Between(1827.0, 2192.0),
        });
        let x3 = p.add(PhysOp::SelectAnd {
            candidates: x2,
            col: col("lineitem", "l_discount"),
            pred: ScalarPred::Between(0.06, 0.08),
        });
        let x4 = p.add(PhysOp::Project {
            positions: x3,
            col: col("lineitem", "l_extendedprice"),
        });
        let x5 = p.add(PhysOp::Project {
            positions: x3,
            col: col("lineitem", "l_discount"),
        });
        let x6 = p.add(PhysOp::BinOp {
            left: x4,
            right: x5,
            op: ArithOp::Mul,
        });
        p.add(PhysOp::AggrSum { values: x6 });
        p
    }

    #[test]
    fn q6_shape_matches_fig3() {
        let p = q6_plan();
        assert_eq!(p.len(), 7);
        assert_eq!(p.root(), NodeId(6));
        assert_eq!(p.node(NodeId(0)).mal_name(), "algebra.thetasubselect");
        assert_eq!(p.node(NodeId(6)).mal_name(), "aggr.sum");
    }

    #[test]
    fn dependents_are_inverted_inputs() {
        let p = q6_plan();
        let deps = p.dependents();
        // X_3 (the final select) feeds both projections.
        assert_eq!(deps[2], vec![NodeId(3), NodeId(4)]);
        // The root feeds nothing.
        assert!(deps[6].is_empty());
    }

    #[test]
    fn display_renders_mal() {
        let p = q6_plan();
        let s = p.to_string();
        assert!(s.contains("X_0 := algebra.thetasubselect"));
        assert!(s.contains("X_6 := aggr.sum"));
    }

    #[test]
    fn ops_report_inputs() {
        let p = q6_plan();
        assert!(p.node(NodeId(0)).inputs().is_empty());
        assert_eq!(p.node(NodeId(5)).inputs(), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn cmp_and_arith_semantics() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
        assert_eq!(ArithOp::MulOneMinus.apply(100.0, 0.1), 90.0);
        assert_eq!(ArithOp::Sub.apply(3.0, 1.0), 2.0);
        assert_eq!(ArithOp::Add.apply(3.0, 1.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "topologically ordered")]
    fn forward_reference_rejected() {
        let mut p = Plan::new("bad");
        p.add(PhysOp::AggrSum { values: NodeId(5) });
    }

    #[test]
    #[should_panic(expected = "empty plan")]
    fn empty_root_panics() {
        Plan::new("empty").root();
    }
}
