//! The execution engine: worker pool, dataflow scheduling and the two
//! engine flavors the paper evaluates.
//!
//! - **MonetDB flavor**: one worker thread per hardware core, *unpinned* —
//!   "MonetDB let to the OS the thread scheduling responsibility". Tasks
//!   live in one global dataflow queue.
//! - **SQL Server flavor**: workers pinned one-per-core, tasks dispatched
//!   to per-NUMA-node queues by input-data home, with cross-node stealing
//!   — "SQL Server is NUMA-aware associating threads and processors to
//!   improve affinity".
//!
//! Operators materialise partition-wise: each task allocates and
//! first-touches its own output slice, so intermediates spread across the
//! NUMA nodes that ran the operator. Identical sub-plans across concurrent
//! clients share evaluated results through a memo cache (a simulator
//! optimisation: simulated time and traffic are charged per execution
//! regardless; see DESIGN.md §4).

use crate::exec::cost;
use crate::exec::eval;
use crate::exec::eval::GroupAcc;
use crate::exec::fault::{FaultPlan, WorkerFaultKind};
use crate::exec::mat::{FlatJoinMap, JoinTable, Mat, NodeStorage, PairsMat, PosMat, ValMat};
use crate::exec::par::QueryError;
use crate::exec::plan::{ColRef, NodeId, PhysOp, Plan, Side};
use crate::exec::task::{n_parts_for, part_range, ChargeItem, Partial, QueryId, Task, TaskCursor};
use crate::exec::tomograph::Tomograph;
use crate::storage::bat::{Bat, BatStore, ColData};
use crate::storage::catalog::Catalog;
use crate::tpch::gen::TpchData;
use emca_metrics::{FxHashMap, SimDuration, SimTime};
use numa_sim::{AccessKind, Machine, SegId, SpaceId, StreamId, StreamTraffic};
use os_sim::{SimWork, StepOutcome, Tid, WorkCtx};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;

/// Engine flavor (thread/data placement strategy).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flavor {
    /// Volcano engine that leaves scheduling entirely to the OS.
    MonetDb,
    /// NUMA-aware engine with pinned workers and locality dispatch.
    SqlServer,
}

/// Engine construction parameters.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Placement strategy.
    pub flavor: Flavor,
    /// Worker threads (0 = one per hardware core, the MonetDB default).
    pub n_workers: usize,
    /// Per-query parse/optimise CPU time charged to the client session.
    pub plan_overhead: SimDuration,
    /// Memo cache entries before an epoch flush.
    pub memo_capacity: usize,
    /// Deterministic fault plan (`faults=` spec field); `None` (or an
    /// empty plan) keeps the fault plane fully inert.
    pub faults: Option<FaultPlan>,
    /// Seed for the plan's `badquery` poisoning draws.
    pub fault_seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            flavor: Flavor::MonetDb,
            n_workers: 0,
            plan_overhead: SimDuration::from_micros(200),
            memo_capacity: 512,
            faults: None,
            fault_seed: 0,
        }
    }
}

/// Engine-level statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Dataflow tasks created (the "tasks" series of Fig. 13(c)).
    pub tasks_created: u64,
    /// Tasks fully executed.
    pub tasks_executed: u64,
    /// Cross-node queue steals (SQL Server flavor only).
    pub engine_steals: u64,
    /// Queries completed.
    pub queries_completed: u64,
    /// Queries submitted.
    pub queries_submitted: u64,
    /// Worker recoveries: watchdog respawns of dead/stalled workers on
    /// the threads backend, timed revives of killed workers on the sim.
    pub engine_recoveries: u64,
    /// Cumulative downtime repaired by those recoveries, in
    /// milliseconds (wall on threads, simulated on sim).
    pub recovery_ms: f64,
}

impl EngineStats {
    /// Mean time to recover a dead/stalled worker, in milliseconds
    /// (`0.0` when nothing was ever recovered).
    pub fn mttr_ms(&self) -> f64 {
        if self.engine_recoveries == 0 {
            0.0
        } else {
            self.recovery_ms / self.engine_recoveries as f64
        }
    }
}

/// The outcome of one query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Query instance id.
    pub qid: QueryId,
    /// Plan label (e.g. `"q06"`).
    pub label: String,
    /// Caller-chosen tag (e.g. TPC-H query number).
    pub spec_tag: u32,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Attributed memory traffic (per-query HT/IMC ratio of Fig. 19).
    pub traffic: StreamTraffic,
    /// Total worker CPU time spent on this query.
    pub busy: SimDuration,
    /// The root result.
    pub result: Mat,
}

impl QueryResult {
    /// Response time.
    pub fn response(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }
}

struct NodeRun {
    n_parts: u32,
    remaining: u32,
    waiting_inputs: u32,
    partials: Vec<Option<Partial>>,
    mat: Option<Mat>,
    storage: NodeStorage,
    /// Which worker executed each partition (slice-affinity lineage for
    /// the MonetDB flavor's dataflow dispatch).
    part_worker: Vec<Option<u32>>,
    /// Out-of-order completed regions, committed sorted at finalize.
    pending_regions: Vec<(u32, usize, numa_sim::Region)>,
    /// Memo snapshot pinned at schedule time, so every partition of the
    /// node takes the same evaluate-vs-reuse path (the memo may be
    /// filled or flushed concurrently by other queries).
    memo_hit: Option<(Mat, Vec<usize>)>,
    /// Shared output buffer of fixed-width value operators: partitions
    /// write disjoint slices in place, finalize moves the buffer into
    /// the Mat without a concat copy.
    out_vals: Option<eval::ValsBuf>,
}

struct QueryRun {
    stream: StreamId,
    client: Tid,
    label: String,
    spec_tag: u32,
    plan: Rc<Plan>,
    dependents: Vec<Vec<NodeId>>,
    fingerprints: Vec<u64>,
    nodes: Vec<NodeRun>,
    pending_nodes: usize,
    submitted: SimTime,
    busy: SimDuration,
}

struct MemoEntry {
    mat: Mat,
    part_rows: Vec<usize>,
}

/// Task queues per flavor.
struct TaskQueues {
    global: VecDeque<Task>,
    per_node: Vec<VecDeque<Task>>,
    /// MonetDB-flavor dataflow queues: one per worker, fed by slice
    /// affinity, drained by the owner first and stolen from otherwise.
    per_worker: Vec<VecDeque<Task>>,
}

impl TaskQueues {
    fn new(n_nodes: usize) -> Self {
        TaskQueues {
            global: VecDeque::new(),
            per_node: (0..n_nodes).map(|_| VecDeque::new()).collect(),
            per_worker: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.global.len()
            + self.per_node.iter().map(|q| q.len()).sum::<usize>()
            + self.per_worker.iter().map(|q| q.len()).sum::<usize>()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shared engine state (single-threaded simulation: `Rc<RefCell<..>>`).
pub struct EngineCore {
    cfg: EngineConfig,
    /// The catalog of base BATs.
    pub catalog: Catalog,
    store: BatStore,
    space: Option<SpaceId>,
    queries: FxHashMap<u64, QueryRun>,
    next_qid: u64,
    next_stream: u64,
    queues: TaskQueues,
    worker_tids: Vec<Tid>,
    memo: FxHashMap<u64, MemoEntry>,
    /// Per-operator trace (Fig. 6).
    pub tomograph: Tomograph,
    stats: EngineStats,
    results: FxHashMap<u64, Result<QueryResult, QueryError>>,
    /// Armed fault plan runtime, if the config carried one.
    faults: Option<SimFaults>,
    parked: Vec<Option<TaskCursor>>,
    /// Recycled charge-item vectors (capped; see [`POOL_CAP`]).
    item_pool: Vec<Vec<ChargeItem>>,
    /// Reusable read-segment gather buffer for task preparation.
    seg_scratch: Vec<SegId>,
}

/// Upper bound on pooled charge-item vectors (one per in-flight task is
/// plenty; the cap keeps a queue burst from pinning memory).
const POOL_CAP: usize = 64;

/// How long a fault-killed simulated worker stays dark before it
/// revives (the sim analogue of the threads watchdog's detect+respawn
/// turnaround; fixed so recovery stays a pure function of the spec).
fn sim_revive_delay() -> SimDuration {
    SimDuration::from_millis(200)
}

/// Runtime state of the simulated fault plane: which scheduled worker
/// faults already fired, and until when each worker is dark (killed and
/// not yet revived, or mid-stall). All in simulated time — a faulted
/// run is exactly as deterministic as a healthy one.
struct SimFaults {
    plan: FaultPlan,
    seed: u64,
    fired: Vec<bool>,
    dark_until: Vec<SimTime>,
}

/// Cloneable handle to the engine.
#[derive(Clone)]
pub struct Engine {
    core: Rc<RefCell<EngineCore>>,
}

impl Engine {
    /// Creates an engine for a machine with `n_numa` nodes.
    pub fn new(cfg: EngineConfig, n_numa: usize) -> Self {
        let faults = cfg
            .faults
            .as_ref()
            .filter(|p| !p.is_empty())
            .map(|p| SimFaults {
                plan: p.clone(),
                seed: cfg.fault_seed,
                fired: vec![false; p.worker_faults.len()],
                dark_until: Vec::new(),
            });
        Engine {
            core: Rc::new(RefCell::new(EngineCore {
                cfg,
                catalog: Catalog::new(),
                store: BatStore::new(),
                space: None,
                queries: FxHashMap::default(),
                next_qid: 0,
                next_stream: 1,
                queues: TaskQueues::new(n_numa),
                worker_tids: Vec::new(),
                memo: FxHashMap::default(),
                tomograph: Tomograph::new(),
                stats: EngineStats::default(),
                results: FxHashMap::default(),
                faults,
                parked: Vec::new(),
                item_pool: Vec::new(),
                seg_scratch: Vec::new(),
            })),
        }
    }

    /// Borrows the core (single-threaded simulation; panics on re-entry).
    pub fn core(&self) -> std::cell::RefMut<'_, EngineCore> {
        self.core.borrow_mut()
    }

    /// Immutable core borrow.
    pub fn core_ref(&self) -> std::cell::Ref<'_, EngineCore> {
        self.core.borrow()
    }

    /// Loads the generated database: creates the DBMS address space and
    /// registers base BATs.
    ///
    /// `loader_core` controls page placement:
    ///
    /// - `Some(core)`: a single-threaded loader first-touches every base
    ///   segment from that core (all base data homed on one node);
    /// - `None`: BATs are mmap-style lazy — pages are homed by whichever
    ///   worker first scans them. This is MonetDB's actual behaviour and
    ///   the root of the paper's placement effects: under the OS
    ///   scheduler the first concurrent queries scatter the data over all
    ///   nodes, while the mechanism's ramp-up concentrates it.
    pub fn load(
        &self,
        machine: &mut Machine,
        data: &TpchData,
        loader_core: Option<numa_sim::CoreId>,
    ) {
        let mut core = self.core();
        let core = &mut *core;
        assert!(core.space.is_none(), "engine already loaded");
        let space = machine.create_space();
        core.space = Some(space);
        for table in &data.tables {
            let tname: &'static str = table.name;
            for gc in &table.columns {
                let bat = Bat::new(machine, space, gc.name, gc.data.clone());
                if let Some(lc) = loader_core {
                    for seg in bat.region.segments() {
                        machine.access_segment(lc, seg, AccessKind::Write, StreamId(0));
                    }
                }
                let id = core.store.insert(bat);
                core.catalog.register(tname, gc.name, id, &core.store);
            }
        }
    }

    /// The DBMS address space (for the mechanism's page statistics).
    pub fn space(&self) -> SpaceId {
        self.core_ref().space.expect("engine not loaded")
    }

    /// Homes every base segment round-robin across the NUMA nodes (the
    /// `numactl --interleave` warm-server placement): neutral first-touch
    /// that hands no allocation policy a head start. Must run after
    /// [`Engine::load`] and before any queries.
    pub fn interleave_base(&self, machine: &mut Machine) {
        let core = self.core_ref();
        let n_nodes = machine.topology().n_nodes();
        let cores_per_node = machine.topology().cores_per_node();
        let mut i = 0usize;
        for bat in core.store.iter() {
            for seg in bat.region.segments() {
                let node = i % n_nodes;
                let toucher = numa_sim::CoreId((node * cores_per_node) as u16);
                machine.access_segment(toucher, seg, AccessKind::Write, StreamId(0));
                i += 1;
            }
        }
    }

    /// Spawns the worker pool into `group` on `kernel`. SQL Server flavor
    /// pins worker `i` to core `i`.
    pub fn start_workers(&self, kernel: &mut os_sim::Kernel, group: os_sim::GroupId) {
        let (flavor, n) = {
            let core = self.core_ref();
            let n = if core.cfg.n_workers == 0 {
                kernel.machine().topology().n_cores()
            } else {
                core.cfg.n_workers
            };
            (core.cfg.flavor, n)
        };
        self.core().queues.per_worker.resize_with(n, VecDeque::new);
        for i in 0..n {
            let affinity = match flavor {
                Flavor::MonetDb => None,
                Flavor::SqlServer => Some(os_sim::CoreMask::single(numa_sim::CoreId(
                    (i % kernel.machine().topology().n_cores()) as u16,
                ))),
            };
            let body = WorkerBody {
                engine: self.clone(),
                idx: i,
            };
            let tid = kernel.spawn(format!("worker{i}"), group, affinity, Box::new(body));
            self.core().worker_tids.push(tid);
        }
    }

    /// Worker thread ids.
    pub fn worker_tids(&self) -> Vec<Tid> {
        self.core_ref().worker_tids.clone()
    }

    /// Submits a query from within a client work step. Wakes the worker
    /// pool through the step context. Returns the query id; the client is
    /// woken when the result is available via [`Engine::take_result`].
    /// `step_offset` is the simulated time the caller already consumed in
    /// this step (timestamps stay sub-tick accurate).
    pub fn submit(
        &self,
        ctx: &mut WorkCtx<'_>,
        plan: Rc<Plan>,
        spec_tag: u32,
        step_offset: SimDuration,
    ) -> QueryId {
        let mut core = self.core();
        let qid = core.submit_inner(plan, spec_tag, ctx.tid, ctx.now + step_offset);
        if core.results.contains_key(&qid.0) {
            // Poisoned at the front door: nothing was scheduled, so no
            // worker will ever wake the client — wake it ourselves.
            ctx.wake(ctx.tid);
            return qid;
        }
        for tid in core.worker_tids.clone() {
            ctx.wake(tid);
        }
        qid
    }

    /// Fetches (and removes) a completed query's outcome: `Ok` with the
    /// result, or the typed [`QueryError`] the query failed with (on
    /// this backend, only fault-plan poisoning).
    pub fn take_result(&self, qid: QueryId) -> Option<Result<QueryResult, QueryError>> {
        self.core().results.remove(&qid.0)
    }

    /// Engine statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        self.core_ref().stats
    }

    /// Outstanding (queued) task count.
    pub fn queued_tasks(&self) -> usize {
        self.core_ref().queues.len()
    }

    /// Number of in-flight queries.
    pub fn active_queries(&self) -> usize {
        self.core_ref().queries.len()
    }

    /// The per-query parse/plan overhead clients must charge.
    pub fn plan_overhead(&self) -> SimDuration {
        self.core_ref().cfg.plan_overhead
    }
}

impl EngineCore {
    fn submit_inner(
        &mut self,
        plan: Rc<Plan>,
        spec_tag: u32,
        client: Tid,
        now: SimTime,
    ) -> QueryId {
        assert!(!plan.is_empty(), "cannot submit an empty plan");
        let qid = QueryId(self.next_qid);
        self.next_qid += 1;
        let stream = StreamId(self.next_stream);
        self.next_stream += 1;
        self.stats.queries_submitted += 1;
        if let Some(f) = &self.faults {
            // Same per-(seed, qid) draw as the threads backend, so both
            // poison the same query ids.
            if f.plan.bad_query(f.seed, qid.0) {
                self.results.insert(qid.0, Err(QueryError::BadQuery));
                return qid;
            }
        }

        let dependents = plan.dependents();
        let fingerprints = fingerprint_plan(&plan);
        let nodes: Vec<NodeRun> = plan
            .nodes()
            .iter()
            .map(|op| NodeRun {
                n_parts: 0,
                remaining: 0,
                waiting_inputs: op.inputs().len() as u32,
                partials: Vec::new(),
                mat: None,
                storage: NodeStorage::new(out_row_bytes(op).max(4)),
                part_worker: Vec::new(),
                pending_regions: Vec::new(),
                memo_hit: None,
                out_vals: None,
            })
            .collect();
        let pending = nodes.len();
        let run = QueryRun {
            stream,
            client,
            label: plan.label.clone(),
            spec_tag,
            plan,
            dependents,
            fingerprints,
            nodes,
            pending_nodes: pending,
            submitted: now,
            busy: SimDuration::ZERO,
        };
        self.queries.insert(qid.0, run);
        // Schedule source nodes.
        let run = &self.queries[&qid.0];
        let ready: Vec<NodeId> = run
            .plan
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, op)| op.inputs().is_empty())
            .map(|(i, _)| NodeId(i as u16))
            .collect();
        for node in ready {
            self.schedule_node(qid, node);
        }
        qid
    }

    /// Splits a ready node into tasks and enqueues them.
    fn schedule_node(&mut self, qid: QueryId, node: NodeId) {
        let workers = self.worker_tids.len().max(1);
        let run = self.queries.get_mut(&qid.0).expect("scheduling dead query");
        let fp = run.fingerprints[node.idx()];
        let memo_hit = self
            .memo
            .get(&fp)
            .map(|e| (e.mat.clone(), e.part_rows.clone()));
        let primary_len =
            primary_input_len(&run.plan, node, &run.nodes, &self.catalog, &self.store);
        let n_parts = match run.plan.node(node) {
            PhysOp::TopN { .. } => 1,
            _ => n_parts_for(primary_len, workers),
        };
        // Slice affinity: partition p inherits the worker that executed
        // the matching slice of the *primary* input — the one the
        // operator partitions over (mitosis chains a slice through the
        // operator pipeline on one dataflow thread). Source scans are
        // dealt round-robin like fresh mitosis slices.
        let lineage: Option<&[Option<u32>]> =
            primary_input(&run.plan, node).map(|i| run.nodes[i.idx()].part_worker.as_slice());
        let prefs: Vec<Option<u32>> = (0..n_parts)
            .map(|part| match lineage {
                Some(pw) if !pw.is_empty() => pw[(part as usize * pw.len()) / n_parts as usize],
                _ => Some(((qid.0 as u32).wrapping_add(part)) % workers as u32),
            })
            .collect();
        let nr = &mut run.nodes[node.idx()];
        nr.memo_hit = memo_hit;
        nr.n_parts = n_parts;
        nr.remaining = n_parts;
        nr.partials = (0..n_parts).map(|_| None).collect();
        nr.part_worker = vec![None; n_parts as usize];
        let stream_tasks: Vec<Task> = (0..n_parts)
            .map(|part| Task {
                qid,
                node,
                part,
                n_parts,
                pref_node: None,
                pref_worker: prefs[part as usize],
            })
            .collect();
        for task in stream_tasks {
            self.stats.tasks_created += 1;
            self.push_task(task);
        }
    }

    fn push_task(&mut self, task: Task) {
        match self.cfg.flavor {
            Flavor::SqlServer => match task.pref_node {
                Some(n) => self.queues.per_node[n.idx()].push_back(task),
                None => self.queues.global.push_back(task),
            },
            Flavor::MonetDb => match task.pref_worker {
                Some(w) if (w as usize) < self.queues.per_worker.len() => {
                    self.queues.per_worker[w as usize].push_back(task)
                }
                _ => self.queues.global.push_back(task),
            },
        }
    }

    /// Pops the next task for worker `worker_idx` running on NUMA node
    /// `worker_node`. SQL Server flavor prefers the local node queue and
    /// steals across nodes; MonetDB prefers the worker's own dataflow
    /// queue (slice affinity) and steals from other workers when idle.
    pub fn pop_task(&mut self, worker_node: numa_sim::NodeId, worker_idx: usize) -> Option<Task> {
        match self.cfg.flavor {
            Flavor::MonetDb => {
                // Own queue drains LIFO (depth-first): a consumer task
                // enqueued by the slice this worker just finished runs
                // next, while its output is still cache-hot. Steals drain
                // FIFO below — the classic work-stealing deque.
                if let Some(q) = self.queues.per_worker.get_mut(worker_idx) {
                    if let Some(t) = q.pop_back() {
                        return Some(t);
                    }
                }
                if let Some(t) = self.queues.global.pop_front() {
                    return Some(t);
                }
                // DFLOW-style stealing: scan the other workers' queues,
                // longest first would need a pass anyway, so take the
                // first non-empty one in a stable order.
                for i in 0..self.queues.per_worker.len() {
                    if i == worker_idx {
                        continue;
                    }
                    if let Some(t) = self.queues.per_worker[i].pop_front() {
                        self.stats.engine_steals += 1;
                        return Some(t);
                    }
                }
                None
            }
            Flavor::SqlServer => {
                if let Some(t) = self.queues.per_node[worker_node.idx()].pop_front() {
                    return Some(t);
                }
                if let Some(t) = self.queues.global.pop_front() {
                    return Some(t);
                }
                for i in 0..self.queues.per_node.len() {
                    if i == worker_node.idx() {
                        continue;
                    }
                    if let Some(t) = self.queues.per_node[i].pop_front() {
                        self.stats.engine_steals += 1;
                        return Some(t);
                    }
                }
                None
            }
        }
    }

    /// Assigns a locality preference to SQL Server tasks at dispatch time
    /// (home node of the partition's first input segment).
    fn locality_of(&self, task: &Task, machine: &Machine) -> Option<numa_sim::NodeId> {
        let run = self.queries.get(&task.qid.0)?;
        let first_seg =
            first_input_segment(&run.plan, task, &run.nodes, &self.catalog, &self.store)?;
        machine.mem().home_of(first_seg)
    }

    /// Re-dispatches tasks from the global queue to per-node queues once
    /// locality is known (SQL Server flavor). Called by workers before
    /// popping.
    pub fn localize_tasks(&mut self, machine: &Machine) {
        if self.cfg.flavor != Flavor::SqlServer || self.queues.global.is_empty() {
            return;
        }
        let mut pending: Vec<Task> = self.queues.global.drain(..).collect();
        for task in pending.drain(..) {
            let pref = self.locality_of(&task, machine);
            let mut task = task;
            task.pref_node = pref;
            match pref {
                Some(n) => self.queues.per_node[n.idx()].push_back(task),
                None => self.queues.global.push_back(task),
            }
        }
    }

    /// Prepares a popped task: evaluates its partition (or reuses the
    /// memo), allocates its output region and builds the charge items.
    pub fn prepare_task(&mut self, task: Task, machine: &mut Machine) -> TaskCursor {
        let space = self.space.expect("engine not loaded");
        // The gather buffer is taken out of the pool up front so the rest
        // of the preparation can hold immutable borrows of the query run
        // (the operator is *borrowed*, not cloned — an `InSet` predicate
        // clone per task was a hot-path allocation).
        let mut reads: Vec<SegId> = std::mem::take(&mut self.seg_scratch);
        reads.clear();
        let run = self.queries.get(&task.qid.0).expect("task for dead query");
        let op = run.plan.node(task.node);
        let stream = run.stream;
        let memo_hit = run.nodes[task.node.idx()].memo_hit.is_some();

        let primary_len =
            primary_input_len(&run.plan, task.node, &run.nodes, &self.catalog, &self.store);
        let (start, end) = part_range(primary_len, task.part, task.n_parts);
        let rows_in = end - start;

        // ---- gather read segments -------------------------------------
        // Every source appends through the `*_into` forms, so no
        // per-input vectors are allocated and the emitted sequence is
        // unchanged.
        {
            let nodes = &run.nodes;
            let read_node_rows = |node: NodeId, s: usize, e: usize, reads: &mut Vec<SegId>| {
                nodes[node.idx()]
                    .storage
                    .segments_for_rows_into(s, e, reads);
            };
            match &op {
                PhysOp::ScanSelect { col, .. } => {
                    self.col_bat(col)
                        .segments_for_rows_into(start, end, &mut reads);
                }
                PhysOp::SelectAnd {
                    candidates, col, ..
                } => {
                    read_node_rows(*candidates, start, end, &mut reads);
                    let cands = nodes[candidates.idx()].mat.as_ref().expect("input ready");
                    let slice = &cands.as_pos().pos[start..end];
                    self.col_bat(col)
                        .segments_for_positions_into(slice, &mut reads);
                }
                PhysOp::SelectColCmp {
                    candidates,
                    left,
                    right,
                    ..
                } => match candidates {
                    Some(c) => {
                        read_node_rows(*c, start, end, &mut reads);
                        let cands = nodes[c.idx()].mat.as_ref().expect("input ready");
                        let slice = &cands.as_pos().pos[start..end];
                        self.col_bat(left)
                            .segments_for_positions_into(slice, &mut reads);
                        self.col_bat(right)
                            .segments_for_positions_into(slice, &mut reads);
                    }
                    None => {
                        self.col_bat(left)
                            .segments_for_rows_into(start, end, &mut reads);
                        self.col_bat(right)
                            .segments_for_rows_into(start, end, &mut reads);
                    }
                },
                PhysOp::Project { positions, col } => {
                    read_node_rows(*positions, start, end, &mut reads);
                    let pos = nodes[positions.idx()].mat.as_ref().expect("input ready");
                    let slice = &pos.as_pos().pos[start..end];
                    self.col_bat(col)
                        .segments_for_positions_into(slice, &mut reads);
                }
                PhysOp::ProjectSide { pairs, side, col } => {
                    read_node_rows(*pairs, start, end, &mut reads);
                    let pm = nodes[pairs.idx()].mat.as_ref().expect("input ready");
                    let pm = pm.as_pairs();
                    let slice = match side {
                        Side::Probe => &pm.probe.pos[start..end],
                        Side::Build => &pm.build.pos[start..end],
                    };
                    self.col_bat(col)
                        .segments_for_positions_unsorted_into(slice, &mut reads);
                }
                PhysOp::BinOp { left, right, .. } => {
                    read_node_rows(*left, start, end, &mut reads);
                    read_node_rows(*right, start, end, &mut reads);
                }
                PhysOp::AggrSum { values } => {
                    read_node_rows(*values, start, end, &mut reads);
                }
                PhysOp::GroupAgg { keys, values, .. } => {
                    read_node_rows(*keys, start, end, &mut reads);
                    if let Some(v) = values {
                        read_node_rows(*v, start, end, &mut reads);
                    }
                }
                PhysOp::JoinBuild { keys } => {
                    read_node_rows(*keys, start, end, &mut reads);
                }
                PhysOp::JoinProbe { build, probe } => {
                    read_node_rows(*probe, start, end, &mut reads);
                    let build_storage = &nodes[build.idx()].storage;
                    build_storage.segments_for_rows_into(
                        0,
                        build_storage.rows().max(1),
                        &mut reads,
                    );
                }
                PhysOp::TopN { .. } => {}
            }
        }

        // Fixed-width value operators write their partition's slice into
        // a node-level shared buffer (no finalize concat); the buffer's
        // type and size are known before evaluation.
        let val_buf_ty = if memo_hit {
            None
        } else {
            match &op {
                PhysOp::Project { col, .. } | PhysOp::ProjectSide { col, .. } => {
                    Some(self.col_bat(col).data.col_type())
                }
                PhysOp::BinOp { .. } => Some(crate::storage::bat::ColType::F64),
                _ => None,
            }
        };
        let row_bytes = out_row_bytes(op);
        let mal_name = op.mal_name();
        let cycles_each = op_cycles(op);

        // ---- evaluate (or reuse) ---------------------------------------
        let (partial, out_rows) = if memo_hit {
            let (_, part_rows) = run.nodes[task.node.idx()]
                .memo_hit
                .as_ref()
                .expect("memo pinned at schedule");
            let rows = memo_part_rows(part_rows, task.part, task.n_parts);
            (Partial::Reuse, rows)
        } else if let Some(ty) = val_buf_ty {
            let run_mut = self.queries.get_mut(&task.qid.0).expect("dead query");
            let mut buf = run_mut.nodes[task.node.idx()]
                .out_vals
                .take()
                .unwrap_or_else(|| eval::ValsBuf::new(ty, primary_len));
            evaluate_val_into(
                run_mut.plan.node(task.node),
                run_mut,
                start,
                end,
                &self.catalog,
                &self.store,
                &mut buf,
            );
            run_mut.nodes[task.node.idx()].out_vals = Some(buf);
            (Partial::Written(end - start), end - start)
        } else {
            let partial = evaluate_partition(op, run, start, end, &self.catalog, &self.store);
            let rows = partial_rows(&partial);
            (partial, rows)
        };

        // ---- output region ---------------------------------------------
        let out_region = if out_rows > 0 && row_bytes > 0 {
            Some(machine.alloc(space, out_rows as u64 * row_bytes))
        } else {
            None
        };

        // ---- charge items ----------------------------------------------
        let cycles_total = rows_in as u64 * cycles_each + out_rows as u64 * cost::MERGE / 4;
        let n_chunks = reads.len().max(1) as u64;
        let per_chunk = (cycles_total / n_chunks).max(1);
        let mut items: Vec<ChargeItem> = self.item_pool.pop().unwrap_or_default();
        items.clear();
        items.reserve(reads.len() * 2 + 8);
        if reads.is_empty() {
            items.push(ChargeItem::Compute(cycles_total.max(1)));
        } else {
            for &seg in &reads {
                items.push(ChargeItem::Read(seg));
                items.push(ChargeItem::Compute(per_chunk));
            }
        }
        self.seg_scratch = reads;
        if let Some(region) = &out_region {
            items.extend(region.segments().map(ChargeItem::Write));
        }

        TaskCursor::new(task, stream, mal_name, items, partial, out_rows, out_region)
    }

    /// Completes an executed task. May finalize its node, schedule newly
    /// ready nodes, and complete the whole query (waking the client).
    /// `step_offset` is the executing worker's in-step elapsed time;
    /// `worker_idx` records the slice-affinity lineage.
    pub fn complete_task(
        &mut self,
        mut cursor: TaskCursor,
        ctx: &mut WorkCtx<'_>,
        step_offset: SimDuration,
        worker_idx: usize,
    ) {
        self.stats.tasks_executed += 1;
        self.tomograph.record(cursor.mal_name, cursor.charged);
        let qid = cursor.task.qid;
        let node = cursor.task.node;
        let run = self.queries.get_mut(&qid.0).expect("completing dead query");
        run.busy += cursor.charged;
        let nr = &mut run.nodes[node.idx()];
        nr.part_worker[cursor.task.part as usize] = Some(worker_idx as u32);
        nr.partials[cursor.task.part as usize] =
            Some(cursor.partial.take().expect("partial already taken"));
        if let Some(region) = cursor.out_region.take() {
            // Buffered as (part, rows, region); ordered insert happens at
            // finalize through partials order.
            nr.storage_push_pending(cursor.task.part, cursor.out_rows, region);
        }
        nr.remaining -= 1;
        if self.item_pool.len() < POOL_CAP {
            self.item_pool.push(cursor.take_items());
        }
        if nr.remaining == 0 {
            self.finalize_node(qid, node, ctx, step_offset);
        }
    }

    /// Finalizes a node whose tasks all completed: assembles the Mat,
    /// fills the memo, unblocks dependents, completes the query.
    fn finalize_node(
        &mut self,
        qid: QueryId,
        node: NodeId,
        ctx: &mut WorkCtx<'_>,
        step_offset: SimDuration,
    ) {
        let fp;
        let mat;
        {
            let run = self.queries.get_mut(&qid.0).expect("dead query");
            fp = run.fingerprints[node.idx()];
            let op = run.plan.node(node).clone();
            // Partials are handed to assembly by value: single-partition
            // nodes move their buffers straight into the Mat instead of
            // copying, and group/hash partials merge without clones.
            let nr = &mut run.nodes[node.idx()];
            let partials = std::mem::take(&mut nr.partials);
            let out_vals = nr.out_vals.take();
            let assembled = assemble_mat(
                &op,
                run,
                node,
                partials,
                out_vals,
                &self.catalog,
                &self.store,
            );
            let nr = &mut run.nodes[node.idx()];
            nr.storage_commit();
            nr.memo_hit = None;
            nr.mat = Some(assembled.clone());
            run.pending_nodes -= 1;
            mat = assembled;
        }
        // Fill the memo (bounded by epoch flush).
        if !self.memo.contains_key(&fp) {
            if self.memo.len() >= self.cfg.memo_capacity {
                self.memo.clear();
            }
            let run = &self.queries[&qid.0];
            let nr = &run.nodes[node.idx()];
            let part_rows = nr.committed_part_rows();
            self.memo.insert(fp, MemoEntry { mat, part_rows });
        }

        // Unblock dependents.
        let ready: Vec<NodeId> = {
            let run = self.queries.get_mut(&qid.0).expect("dead query");
            let deps = run.dependents[node.idx()].clone();
            deps.into_iter()
                .filter(|d| {
                    let nr = &mut run.nodes[d.idx()];
                    nr.waiting_inputs -= 1;
                    nr.waiting_inputs == 0
                })
                .collect()
        };
        for d in ready {
            self.schedule_node(qid, d);
        }
        if !self.queues.is_empty() {
            for i in 0..self.worker_tids.len() {
                ctx.wake(self.worker_tids[i]);
            }
        }

        // Query completion.
        let done = self.queries[&qid.0].pending_nodes == 0;
        if done {
            let run = self.queries.remove(&qid.0).expect("dead query");
            // Free all intermediate regions.
            for nr in &run.nodes {
                for region in nr.storage.regions() {
                    ctx.machine.free(region);
                }
            }
            let traffic = ctx.machine.counters_mut().retire_stream(run.stream);
            let root = run.plan.root();
            let result = run.nodes[root.idx()].mat.clone().expect("root mat missing");
            self.stats.queries_completed += 1;
            // Steps within one tick share ctx.now, so a sub-tick query
            // could appear to finish before its submission stamp; clamp
            // to keep responses positive (skew is bounded by one tick).
            let finished = (ctx.now + step_offset).max(run.submitted + SimDuration::from_nanos(1));
            self.results.insert(
                qid.0,
                Ok(QueryResult {
                    qid,
                    label: run.label,
                    spec_tag: run.spec_tag,
                    submitted: run.submitted,
                    finished,
                    traffic,
                    busy: run.busy,
                    result,
                }),
            );
            ctx.wake(run.client);
        }
    }

    fn col_bat(&self, col: &ColRef) -> &Bat {
        self.store.get(self.catalog.column(col.table, col.column))
    }

    /// The simulated fault plane, checked at the top of every worker
    /// step. Fires any due fault for worker `idx`, then reports how
    /// long the worker is still dark (`None` = healthy, run normally).
    ///
    /// A **kill** loses the worker's in-flight cursor: its task is
    /// requeued (exactly once — the partial was never committed) and
    /// its allocated output freed, then the worker goes dark for
    /// [`sim_revive_delay`], the sim's fixed detect+respawn turnaround,
    /// counted in [`EngineStats::engine_recoveries`]/`recovery_ms`. A
    /// **stall** keeps the cursor and just goes dark for the stall
    /// duration. Dark workers burn their simulated quantum without
    /// progress, so recovery timing is deterministic.
    fn fault_dark(&mut self, idx: usize, ctx: &mut WorkCtx<'_>) -> Option<SimDuration> {
        self.faults.as_ref()?;
        let now = ctx.now;
        let mut kill = false;
        let mut stall: Option<SimDuration> = None;
        {
            let f = self.faults.as_mut()?;
            if f.dark_until.len() <= idx {
                f.dark_until.resize(idx + 1, SimTime::ZERO);
            }
            for i in 0..f.plan.worker_faults.len() {
                let wf = f.plan.worker_faults[i];
                if f.fired[i] || wf.worker as usize != idx {
                    continue;
                }
                if now >= SimTime::ZERO + wf.at {
                    f.fired[i] = true;
                    match wf.kind {
                        WorkerFaultKind::Kill => kill = true,
                        WorkerFaultKind::Stall(d) => stall = Some(d),
                    }
                }
            }
        }
        if kill {
            self.sim_kill_worker(idx, ctx);
            let revive = now + sim_revive_delay();
            self.stats.engine_recoveries += 1;
            self.stats.recovery_ms += sim_revive_delay().as_secs_f64() * 1e3;
            let f = self.faults.as_mut()?;
            if revive > f.dark_until[idx] {
                f.dark_until[idx] = revive;
            }
        }
        if let Some(d) = stall {
            let f = self.faults.as_mut()?;
            let until = now + d;
            if until > f.dark_until[idx] {
                f.dark_until[idx] = until;
            }
        }
        let dark = *self.faults.as_ref()?.dark_until.get(idx)?;
        if now < dark {
            Some(dark - now)
        } else {
            None
        }
    }

    /// The sim analogue of a worker dying mid-task: its parked cursor's
    /// task goes back to the global queue (to be re-prepared and
    /// re-executed by a survivor or by this worker after it revives),
    /// the cursor's output region is freed, and the worker's private
    /// queue is rehomed so lineage preferences cannot strand tasks on a
    /// dark worker.
    fn sim_kill_worker(&mut self, idx: usize, ctx: &mut WorkCtx<'_>) {
        if let Some(mut cursor) = self.resume_slot(idx) {
            if let Some(region) = cursor.out_region.take() {
                ctx.machine.free(&region);
            }
            self.queues.global.push_back(cursor.task);
            if self.item_pool.len() < POOL_CAP {
                self.item_pool.push(cursor.take_items());
            }
        }
        if let Some(q) = self.queues.per_worker.get_mut(idx) {
            let orphans: Vec<Task> = q.drain(..).collect();
            self.queues.global.extend(orphans);
        }
        // Survivors may now have work they were never woken for.
        for tid in self.worker_tids.clone() {
            ctx.wake(tid);
        }
    }
}

// Pending-region buffering on NodeRun: tasks finish out of order, but
// NodeStorage wants row order. We stash (part, rows, region) and commit
// sorted at finalize.
impl NodeRun {
    fn storage_push_pending(&mut self, part: u32, rows: usize, region: numa_sim::Region) {
        self.pending_regions.push((part, rows, region));
    }

    fn storage_commit(&mut self) {
        self.pending_regions.sort_by_key(|&(p, _, _)| p);
        let parts: Vec<(u32, usize, numa_sim::Region)> = self.pending_regions.drain(..).collect();
        for (_, rows, region) in parts {
            self.storage.push_part(rows, region);
        }
    }

    fn committed_part_rows(&self) -> Vec<usize> {
        // Reconstructed from storage parts at memo time; when the op has
        // no storage (scalar), a single zero entry.
        vec![self.storage.rows()]
    }
}

/// Input resolution for operator evaluation/assembly, abstracted over
/// the executor: the simulated engine resolves against its `QueryRun`
/// and `BatStore`, the threads backend ([`crate::exec::par`]) against a
/// lock-free snapshot of input mats and shared base columns. Keeping
/// both backends on these exact functions is what makes their query
/// results bitwise identical.
pub(crate) trait ExecInputs {
    /// A base column's data.
    fn col_data(&self, c: &ColRef) -> &ColData;
    /// A finished upstream node's materialised result.
    fn node_mat(&self, n: NodeId) -> &Mat;
}

/// Engine-side [`ExecInputs`]: resolves against the live query run.
struct RunInputs<'a> {
    run: &'a QueryRun,
    catalog: &'a Catalog,
    store: &'a BatStore,
}

impl ExecInputs for RunInputs<'_> {
    fn col_data(&self, c: &ColRef) -> &ColData {
        &self.store.get(self.catalog.column(c.table, c.column)).data
    }

    fn node_mat(&self, n: NodeId) -> &Mat {
        self.run.nodes[n.idx()]
            .mat
            .as_ref()
            .expect("input mat ready")
    }
}

/// Evaluates one partition of an operator for real.
fn evaluate_partition(
    op: &PhysOp,
    run: &QueryRun,
    start: usize,
    end: usize,
    catalog: &Catalog,
    store: &BatStore,
) -> Partial {
    evaluate_partition_on(
        op,
        &RunInputs {
            run,
            catalog,
            store,
        },
        start,
        end,
    )
}

/// [`evaluate_partition`] over any [`ExecInputs`] source (shared by the
/// simulated and threads backends).
pub(crate) fn evaluate_partition_on(
    op: &PhysOp,
    inputs: &impl ExecInputs,
    start: usize,
    end: usize,
) -> Partial {
    let col_data = |c: &ColRef| -> &ColData { inputs.col_data(c) };
    let node_mat = |n: NodeId| -> &Mat { inputs.node_mat(n) };
    match op {
        PhysOp::ScanSelect { col, pred } => {
            Partial::Pos(eval::scan_select(col_data(col), start, end, pred))
        }
        PhysOp::SelectAnd {
            candidates,
            col,
            pred,
        } => {
            let cands = node_mat(*candidates).as_pos();
            Partial::Pos(eval::select_and(
                &cands.pos[start..end],
                col_data(col),
                pred,
            ))
        }
        PhysOp::SelectColCmp {
            candidates,
            left,
            right,
            op,
        } => {
            let out = match candidates {
                Some(c) => {
                    let cands = node_mat(*c).as_pos();
                    eval::select_col_cmp(
                        Some(&cands.pos[start..end]),
                        col_data(left),
                        col_data(right),
                        *op,
                        (0, 0),
                    )
                }
                None => {
                    eval::select_col_cmp(None, col_data(left), col_data(right), *op, (start, end))
                }
            };
            Partial::Pos(out)
        }
        PhysOp::Project { positions, col } => {
            let pos = node_mat(*positions).as_pos();
            match eval::project(&pos.pos[start..end], col_data(col)) {
                ColData::I64(v) => {
                    Partial::ValsI64(Arc::try_unwrap(v).unwrap_or_else(|a| (*a).clone()))
                }
                ColData::F64(v) => {
                    Partial::ValsF64(Arc::try_unwrap(v).unwrap_or_else(|a| (*a).clone()))
                }
            }
        }
        PhysOp::ProjectSide { pairs, side, col } => {
            let pm = node_mat(*pairs).as_pairs();
            let slice = match side {
                Side::Probe => &pm.probe.pos[start..end],
                Side::Build => &pm.build.pos[start..end],
            };
            match eval::project(slice, col_data(col)) {
                ColData::I64(v) => {
                    Partial::ValsI64(Arc::try_unwrap(v).unwrap_or_else(|a| (*a).clone()))
                }
                ColData::F64(v) => {
                    Partial::ValsF64(Arc::try_unwrap(v).unwrap_or_else(|a| (*a).clone()))
                }
            }
        }
        PhysOp::BinOp { left, right, op } => {
            let l = node_mat(*left).as_val();
            let r = node_mat(*right).as_val();
            Partial::ValsF64(eval::bin_op(&l.data, &r.data, *op, start, end))
        }
        PhysOp::AggrSum { values } => {
            let v = node_mat(*values).as_val();
            Partial::Sum(eval::aggr_sum(&v.data, start, end))
        }
        PhysOp::GroupAgg { keys, values, agg } => {
            let k = node_mat(*keys).as_val();
            let v = values.map(|v| node_mat(v).as_val());
            Partial::Groups(eval::group_agg(
                &k.data,
                v.map(|v| &v.data),
                *agg,
                start,
                end,
            ))
        }
        PhysOp::JoinBuild { keys } => {
            let k = node_mat(*keys).as_val();
            Partial::BuildKeys(eval::build_hash_part(&k.data, start, end))
        }
        PhysOp::JoinProbe { build, probe } => {
            let table = node_mat(*build).as_hash();
            let p = node_mat(*probe).as_val();
            let probe_origin = p.origin.as_ref().map(|o| o.pos.as_slice());
            let build_origin = table.build_origin.as_ref().map(|o| o.pos.as_slice());
            let (po, bo) = eval::probe_hash(table, &p.data, probe_origin, build_origin, start, end);
            Partial::PairParts(po, bo)
        }
        PhysOp::TopN { input, n } => {
            let g = node_mat(*input).as_groups();
            Partial::Groups(GroupAcc::Pairs(eval::top_n(g, *n)))
        }
    }
}

/// Assembles the node's final [`Mat`] from partials (or the pinned memo
/// snapshot). Partials arrive by value: the single-partition case moves
/// its buffer into the Mat without a copy, and multi-partition concats
/// reserve exactly once from the partial sizes.
fn assemble_mat(
    op: &PhysOp,
    run: &QueryRun,
    node: NodeId,
    partials: Vec<Option<Partial>>,
    out_vals: Option<eval::ValsBuf>,
    catalog: &Catalog,
    store: &BatStore,
) -> Mat {
    let nr = &run.nodes[node.idx()];
    if let Some((mat, _)) = &nr.memo_hit {
        debug_assert!(
            partials.iter().all(|p| matches!(p, Some(Partial::Reuse))),
            "memo-pinned node produced real partials"
        );
        return mat.clone();
    }
    assemble_parts(
        op,
        &RunInputs {
            run,
            catalog,
            store,
        },
        partials,
        out_vals,
    )
}

/// [`assemble_mat`] over any [`ExecInputs`] source, without the memo
/// path (the threads backend does not memoise — its timing is real).
/// Partials are concatenated/merged strictly in partition order, so both
/// backends produce the same float results bit for bit.
pub(crate) fn assemble_parts(
    op: &PhysOp,
    inputs: &impl ExecInputs,
    mut partials: Vec<Option<Partial>>,
    out_vals: Option<eval::ValsBuf>,
) -> Mat {
    let node_mat = |n: NodeId| -> &Mat { inputs.node_mat(n) };
    let table_of = |col: &ColRef| -> &'static str { col.table };
    match op {
        PhysOp::ScanSelect { col, .. } | PhysOp::SelectAnd { col, .. } => {
            let pos = concat_pos(partials);
            Mat::Pos(PosMat {
                table: table_of(col),
                pos: Arc::new(pos),
            })
        }
        PhysOp::SelectColCmp { left, .. } => {
            let pos = concat_pos(partials);
            Mat::Pos(PosMat {
                table: table_of(left),
                pos: Arc::new(pos),
            })
        }
        PhysOp::Project { positions, .. } => {
            let origin = node_mat(*positions).as_pos().clone();
            Mat::Val(ValMat {
                data: vals_data(out_vals, partials),
                origin: Some(origin),
            })
        }
        PhysOp::ProjectSide { pairs, side, .. } => {
            let pm = node_mat(*pairs).as_pairs();
            let origin = match side {
                Side::Probe => pm.probe.clone(),
                Side::Build => pm.build.clone(),
            };
            Mat::Val(ValMat {
                data: vals_data(out_vals, partials),
                origin: Some(origin),
            })
        }
        PhysOp::BinOp { left, .. } => {
            let origin = node_mat(*left).as_val().origin.clone();
            Mat::Val(ValMat {
                data: vals_data(out_vals, partials),
                origin,
            })
        }
        PhysOp::AggrSum { .. } => {
            let total: f64 = partials
                .iter()
                .map(|p| match p {
                    Some(Partial::Sum(s)) => *s,
                    _ => panic!("non-sum partial in AggrSum"),
                })
                .sum();
            Mat::Scalar(total)
        }
        PhysOp::GroupAgg { .. } | PhysOp::TopN { .. } => {
            let accs = partials.iter_mut().map(|p| match p.take() {
                Some(Partial::Groups(acc)) => acc,
                _ => panic!("non-group partial in group/topn"),
            });
            let merged = eval::merge_groups(accs);
            if let PhysOp::TopN { n, .. } = op {
                Mat::Groups(Arc::new(eval::top_n(&merged, *n)))
            } else {
                Mat::Groups(Arc::new(merged))
            }
        }
        PhysOp::JoinBuild { keys } => {
            let k = node_mat(*keys).as_val();
            let key_parts = partials.iter_mut().map(|p| match p.take() {
                Some(Partial::BuildKeys(v)) => v,
                _ => panic!("non-build partial in JoinBuild"),
            });
            let map = FlatJoinMap::from_parts(key_parts);
            debug_assert_eq!(
                map.n_rows(),
                k.data.len(),
                "build partials must tile the keys"
            );
            let build_table = k.origin.as_ref().map(|o| o.table).unwrap_or("unknown");
            Mat::Hash(Arc::new(JoinTable {
                map,
                build_origin: k.origin.clone(),
                build_table,
            }))
        }
        PhysOp::JoinProbe { build, probe } => {
            let p = node_mat(*probe).as_val();
            let probe_table = p.origin.as_ref().map(|o| o.table).unwrap_or("unknown");
            let table = node_mat(*build).as_hash();
            let build_table = table
                .build_origin
                .as_ref()
                .map(|o| o.table)
                .unwrap_or(table.build_table);
            let total: usize = partials
                .iter()
                .map(|p| match p {
                    Some(Partial::PairParts(a, _)) => a.len(),
                    _ => 0,
                })
                .sum();
            let mut probe_pos = Vec::new();
            let mut build_pos = Vec::new();
            for part in partials.iter_mut() {
                match part.take() {
                    Some(Partial::PairParts(po, bo)) => {
                        if probe_pos.is_empty() && po.len() == total {
                            // Single-partition (or single non-empty)
                            // result: take the buffers as-is.
                            probe_pos = po;
                            build_pos = bo;
                        } else {
                            probe_pos.reserve(total - probe_pos.len());
                            build_pos.reserve(total - build_pos.len());
                            probe_pos.extend_from_slice(&po);
                            build_pos.extend_from_slice(&bo);
                        }
                    }
                    _ => panic!("non-pairs partial in JoinProbe"),
                }
            }
            Mat::Pairs(PairsMat {
                probe: PosMat {
                    table: probe_table,
                    pos: Arc::new(probe_pos),
                },
                build: PosMat {
                    table: build_table,
                    pos: Arc::new(build_pos),
                },
            })
        }
    }
}

fn concat_pos(mut partials: Vec<Option<Partial>>) -> Vec<u32> {
    let total: usize = partials
        .iter()
        .map(|p| match p {
            Some(Partial::Pos(v)) => v.len(),
            _ => 0,
        })
        .sum();
    let mut out: Vec<u32> = Vec::new();
    for p in partials.iter_mut() {
        match p.take() {
            Some(Partial::Pos(v)) => {
                if out.is_empty() && v.len() == total {
                    // All rows in one partial: move, don't copy.
                    out = v;
                } else {
                    out.reserve(total - out.len());
                    out.extend_from_slice(&v);
                }
            }
            _ => panic!("non-pos partial"),
        }
    }
    out
}

fn concat_vals(mut partials: Vec<Option<Partial>>) -> ColData {
    let is_f64 = partials
        .iter()
        .find_map(|p| match p {
            Some(Partial::ValsF64(_)) => Some(true),
            Some(Partial::ValsI64(_)) => Some(false),
            _ => None,
        })
        .unwrap_or(true);
    let total: usize = partials
        .iter()
        .map(|p| match p {
            Some(Partial::ValsF64(v)) => v.len(),
            Some(Partial::ValsI64(v)) => v.len(),
            _ => 0,
        })
        .sum();
    if is_f64 {
        let mut out: Vec<f64> = Vec::new();
        for p in partials.iter_mut() {
            match p.take() {
                Some(Partial::ValsF64(v)) => {
                    if out.is_empty() && v.len() == total {
                        out = v;
                    } else {
                        out.reserve(total - out.len());
                        out.extend_from_slice(&v);
                    }
                }
                Some(Partial::ValsI64(v)) => {
                    out.reserve(total.saturating_sub(out.len()));
                    out.extend(v.iter().map(|&x| x as f64));
                }
                _ => panic!("non-val partial"),
            }
        }
        ColData::F64(Arc::new(out))
    } else {
        let mut out: Vec<i64> = Vec::new();
        for p in partials.iter_mut() {
            match p.take() {
                Some(Partial::ValsI64(v)) => {
                    if out.is_empty() && v.len() == total {
                        out = v;
                    } else {
                        out.reserve(total - out.len());
                        out.extend_from_slice(&v);
                    }
                }
                _ => panic!("mixed val partials"),
            }
        }
        ColData::I64(Arc::new(out))
    }
}

/// Value-operator data: the in-place buffer when present (all partitions
/// wrote their slices), else the concatenated partials (tests and
/// non-engine callers).
fn vals_data(out_vals: Option<eval::ValsBuf>, partials: Vec<Option<Partial>>) -> ColData {
    match out_vals {
        Some(buf) => {
            debug_assert!(
                partials
                    .iter()
                    .all(|p| matches!(p, Some(Partial::Written(_)))),
                "in-place val node produced copied partials"
            );
            buf.into_coldata()
        }
        None => concat_vals(partials),
    }
}

/// Evaluates one partition of a fixed-width value operator straight into
/// the node's shared output buffer.
fn evaluate_val_into(
    op: &PhysOp,
    run: &QueryRun,
    start: usize,
    end: usize,
    catalog: &Catalog,
    store: &BatStore,
    buf: &mut eval::ValsBuf,
) {
    let col_data = |c: &ColRef| -> &ColData { &store.get(catalog.column(c.table, c.column)).data };
    let node_mat =
        |n: NodeId| -> &Mat { run.nodes[n.idx()].mat.as_ref().expect("input mat ready") };
    match op {
        PhysOp::Project { positions, col } => {
            let pos = node_mat(*positions).as_pos();
            eval::project_into(&pos.pos[start..end], col_data(col), buf, start);
        }
        PhysOp::ProjectSide { pairs, side, col } => {
            let pm = node_mat(*pairs).as_pairs();
            let slice = match side {
                Side::Probe => &pm.probe.pos[start..end],
                Side::Build => &pm.build.pos[start..end],
            };
            eval::project_into(slice, col_data(col), buf, start);
        }
        PhysOp::BinOp { left, right, op } => {
            let l = node_mat(*left).as_val();
            let r = node_mat(*right).as_val();
            eval::bin_op_into(&l.data, &r.data, *op, start, end, buf);
        }
        other => panic!("not a fixed-width value operator: {}", other.mal_name()),
    }
}

fn partial_rows(p: &Partial) -> usize {
    match p {
        Partial::Pos(v) => v.len(),
        Partial::ValsF64(v) => v.len(),
        Partial::ValsI64(v) => v.len(),
        Partial::Written(rows) => *rows,
        Partial::PairParts(a, _) => a.len(),
        Partial::Sum(_) => 0,
        Partial::Groups(acc) => acc.n_groups(),
        Partial::BuildKeys(v) => v.len(),
        Partial::Reuse => 0,
    }
}

fn memo_part_rows(part_rows: &[usize], part: u32, n_parts: u32) -> usize {
    let total: usize = part_rows.iter().sum();
    let (s, e) = part_range(total, part, n_parts);
    e - s
}

fn out_row_bytes(op: &PhysOp) -> u64 {
    match op {
        PhysOp::ScanSelect { .. } | PhysOp::SelectAnd { .. } | PhysOp::SelectColCmp { .. } => 4,
        PhysOp::Project { .. } | PhysOp::ProjectSide { .. } | PhysOp::BinOp { .. } => 8,
        PhysOp::JoinProbe { .. } => 8,
        PhysOp::GroupAgg { .. } => 16,
        PhysOp::JoinBuild { .. } => 16,
        PhysOp::AggrSum { .. } | PhysOp::TopN { .. } => 0,
    }
}

fn op_cycles(op: &PhysOp) -> u64 {
    match op {
        PhysOp::ScanSelect { .. } => cost::SCAN_SELECT,
        PhysOp::SelectAnd { .. } => cost::SELECT_AND,
        PhysOp::SelectColCmp { .. } => cost::SELECT_COL_CMP,
        PhysOp::Project { .. } => cost::PROJECT,
        PhysOp::ProjectSide { .. } => cost::PROJECT,
        PhysOp::BinOp { .. } => cost::BIN_OP,
        PhysOp::AggrSum { .. } => cost::AGGR_SUM,
        PhysOp::GroupAgg { .. } => cost::GROUP_AGG,
        PhysOp::JoinBuild { .. } => cost::JOIN_BUILD,
        PhysOp::JoinProbe { .. } => cost::JOIN_PROBE,
        PhysOp::TopN { .. } => cost::TOP_N,
    }
}

/// The plan node an operator partitions over (the slice-affinity
/// lineage source). Mirrors [`primary_input_len`]: for a join probe the
/// partitioning follows the *probe* side, not `inputs().first()` (which
/// is the build). `None` for operators partitioned over base tables.
pub(crate) fn primary_input(plan: &Plan, node: NodeId) -> Option<NodeId> {
    match plan.node(node) {
        PhysOp::ScanSelect { .. } => None,
        PhysOp::SelectAnd { candidates, .. } => Some(*candidates),
        PhysOp::SelectColCmp { candidates, .. } => *candidates,
        PhysOp::Project { positions, .. } => Some(*positions),
        PhysOp::ProjectSide { pairs, .. } => Some(*pairs),
        PhysOp::BinOp { left, .. } => Some(*left),
        PhysOp::AggrSum { values } => Some(*values),
        PhysOp::GroupAgg { keys, .. } => Some(*keys),
        PhysOp::JoinBuild { keys } => Some(*keys),
        PhysOp::JoinProbe { probe, .. } => Some(*probe),
        PhysOp::TopN { input, .. } => Some(*input),
    }
}

/// Length of the primary input an operator partitions over.
fn primary_input_len(
    plan: &Plan,
    node: NodeId,
    nodes: &[NodeRun],
    catalog: &Catalog,
    _store: &BatStore,
) -> usize {
    let mat_len = |n: NodeId| nodes[n.idx()].mat.as_ref().map_or(0, |m| m.len());
    match plan.node(node) {
        PhysOp::ScanSelect { col, .. } => catalog.rows(col.table),
        PhysOp::SelectAnd { candidates, .. } => mat_len(*candidates),
        PhysOp::SelectColCmp {
            candidates, left, ..
        } => match candidates {
            Some(c) => mat_len(*c),
            None => catalog.rows(left.table),
        },
        PhysOp::Project { positions, .. } => mat_len(*positions),
        PhysOp::ProjectSide { pairs, .. } => mat_len(*pairs),
        PhysOp::BinOp { left, .. } => mat_len(*left),
        PhysOp::AggrSum { values } => mat_len(*values),
        PhysOp::GroupAgg { keys, .. } => mat_len(*keys),
        PhysOp::JoinBuild { keys } => mat_len(*keys),
        PhysOp::JoinProbe { probe, .. } => mat_len(*probe),
        PhysOp::TopN { input, .. } => mat_len(*input),
    }
}

/// The first input segment of a task's partition (locality dispatch).
fn first_input_segment(
    plan: &Plan,
    task: &Task,
    nodes: &[NodeRun],
    catalog: &Catalog,
    store: &BatStore,
) -> Option<SegId> {
    let len = primary_input_len(plan, task.node, nodes, catalog, store);
    let (start, end) = part_range(len, task.part, task.n_parts);
    if start >= end {
        return None;
    }
    match plan.node(task.node) {
        PhysOp::ScanSelect { col, .. } => {
            let bat = store.get(catalog.column(col.table, col.column));
            bat.segments_for_rows(start, start + 1).first().copied()
        }
        op => {
            let input = op.inputs().first().copied()?;
            nodes[input.idx()]
                .storage
                .segments_for_rows(start, start + 1)
                .first()
                .copied()
        }
    }
}

/// Structural fingerprints for memoisation: equal sub-plans over the same
/// base data share results.
fn fingerprint_plan(plan: &Plan) -> Vec<u64> {
    let mut fps: Vec<u64> = Vec::with_capacity(plan.len());
    for (i, op) in plan.nodes().iter().enumerate() {
        let mut h = emca_metrics::fxhash::FxHasher::default();
        std::mem::discriminant(op).hash(&mut h);
        match op {
            PhysOp::ScanSelect { col, pred } => {
                col.hash(&mut h);
                hash_pred(pred, &mut h);
            }
            PhysOp::SelectAnd { col, pred, .. } => {
                col.hash(&mut h);
                hash_pred(pred, &mut h);
            }
            PhysOp::SelectColCmp {
                left, right, op, ..
            } => {
                left.hash(&mut h);
                right.hash(&mut h);
                op.hash(&mut h);
            }
            PhysOp::Project { col, .. } => col.hash(&mut h),
            PhysOp::ProjectSide { side, col, .. } => {
                side.hash(&mut h);
                col.hash(&mut h);
            }
            PhysOp::BinOp { op, .. } => op.hash(&mut h),
            PhysOp::AggrSum { .. } => {}
            PhysOp::GroupAgg { agg, .. } => agg.hash(&mut h),
            PhysOp::JoinBuild { .. } => {}
            PhysOp::JoinProbe { .. } => {}
            PhysOp::TopN { n, .. } => n.hash(&mut h),
        }
        for input in plan.node(NodeId(i as u16)).inputs() {
            fps[input.idx()].hash(&mut h);
        }
        fps.push(h.finish());
    }
    fps
}

fn hash_pred(pred: &crate::exec::plan::ScalarPred, h: &mut impl Hasher) {
    use crate::exec::plan::ScalarPred as P;
    match pred {
        P::Cmp(op, k) => {
            0u8.hash(h);
            op.hash(h);
            k.to_bits().hash(h);
        }
        P::Between(a, b) => {
            1u8.hash(h);
            a.to_bits().hash(h);
            b.to_bits().hash(h);
        }
        P::InSet(s) => {
            2u8.hash(h);
            s.hash(h);
        }
    }
}

/// The worker thread body: pops tasks, advances cursors, completes them.
pub struct WorkerBody {
    engine: Engine,
    /// Worker index in the pool.
    pub idx: usize,
}

impl SimWork for WorkerBody {
    fn step(&mut self, ctx: &mut WorkCtx<'_>) -> StepOutcome {
        // Fault plane first: a killed/stalled worker burns its quantum
        // dark instead of executing (inert unless a plan is armed).
        if let Some(dark) = self.engine.core().fault_dark(self.idx, ctx) {
            return StepOutcome::Ran(dark.min(ctx.budget));
        }
        let mut elapsed = SimDuration::ZERO;
        loop {
            if elapsed >= ctx.budget {
                return StepOutcome::Ran(elapsed);
            }
            // Resume or fetch a task.
            let cursor = {
                let mut core = self.engine.core();
                match core.resume_slot(self.idx) {
                    Some(c) => Some(c),
                    None => {
                        core.localize_tasks(ctx.machine);
                        let node = ctx.machine.topology().node_of(ctx.core);
                        match core.pop_task(node, self.idx) {
                            Some(task) => Some(core.prepare_task(task, ctx.machine)),
                            None => None,
                        }
                    }
                }
            };
            let Some(mut cursor) = cursor else {
                return StepOutcome::Blocked(elapsed);
            };
            let (used, done) = cursor.advance(ctx, ctx.budget.saturating_sub(elapsed));
            elapsed += used;
            let mut core = self.engine.core();
            if done {
                core.complete_task(cursor, ctx, elapsed, self.idx);
            } else {
                core.park_slot(self.idx, cursor);
                return StepOutcome::Ran(elapsed);
            }
        }
    }

    fn label(&self) -> &str {
        "dbms-worker"
    }
}

// Per-worker parked cursors (tasks in progress across ticks).
impl EngineCore {
    fn resume_slot(&mut self, idx: usize) -> Option<TaskCursor> {
        if self.parked.len() <= idx {
            self.parked.resize_with(idx + 1, || None);
        }
        self.parked[idx].take()
    }

    fn park_slot(&mut self, idx: usize, cursor: TaskCursor) {
        if self.parked.len() <= idx {
            self.parked.resize_with(idx + 1, || None);
        }
        self.parked[idx] = Some(cursor);
    }
}
