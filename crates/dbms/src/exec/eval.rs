//! Genuine operator evaluation.
//!
//! Operators compute real results over the generated columns, so
//! selectivities, join fan-outs and group cardinalities are authentic —
//! the simulation only *times* the work, it does not fake the data flow.
//! All functions operate on partition slices so tasks can evaluate their
//! chunk independently.
//!
//! The public kernels are *monomorphized*: each dispatches on the
//! `ColData` variant and the predicate/operator shape **once per call**,
//! then runs a tight typed loop over `&[i64]` / `&[f64]` slices with a
//! capacity-estimated output. The straightforward per-row formulations
//! they replaced live on in [`mod@reference`], which the property tests and
//! the operator benches use as the equivalence/`before` baseline. Every
//! kernel is output-identical to its reference — the rework is a pure
//! wall-time optimisation (simulated time is charged by the cost model,
//! not measured).

use crate::exec::mat::JoinTable;
use crate::exec::plan::{AggKind, ArithOp, CmpOp, ScalarPred};
use crate::storage::bat::ColData;
use emca_metrics::FxHashMap;

impl ScalarPred {
    /// Tests one value (integer columns compare exactly in f64 for the
    /// generated ranges; `InSet` uses the i64 view). Per-row path kept
    /// for the reference implementations; the kernels below hoist this
    /// dispatch out of their loops.
    #[inline]
    pub fn test(&self, data: &ColData, row: usize) -> bool {
        match self {
            ScalarPred::Cmp(op, k) => op.apply(data.value_f64(row), *k),
            ScalarPred::Between(lo, hi) => {
                let v = data.value_f64(row);
                v >= *lo && v <= *hi
            }
            ScalarPred::InSet(set) => set.contains(&data.value_i64(row)),
        }
    }
}

/// Output capacity estimate for a selection over `len` rows: generous
/// enough that common selectivities rarely reallocate, capped so a
/// partition-sized reservation does not page in fresh kernel memory per
/// task (partials outlive the call, so buffers cannot be pooled).
#[inline]
fn sel_capacity(len: usize) -> usize {
    (len / 4).clamp(64, 16384).min(len.max(1))
}

/// Block size of the branchless selection kernels: the staging buffer
/// stays L1-resident, survivors append in one bulk copy.
const SEL_BLOCK: usize = 4096;

/// Appends `base + i` for every slice element satisfying `f`.
///
/// Branchless selection: within each block the position is written
/// unconditionally and the write cursor advances by the predicate
/// result, so mid-range selectivities pay no branch mispredictions.
#[inline(always)]
fn scan_positions<T: Copy>(s: &[T], base: u32, out: &mut Vec<u32>, f: impl Fn(T) -> bool) {
    let mut buf = [0u32; SEL_BLOCK];
    let mut pos = base;
    for chunk in s.chunks(SEL_BLOCK) {
        let mut j = 0usize;
        for &x in chunk {
            buf[j] = pos;
            j += f(x) as usize;
            pos += 1;
        }
        out.extend_from_slice(&buf[..j]);
    }
}

/// Appends every candidate position whose value satisfies `f`
/// (branchless, block-staged like [`scan_positions`]).
#[inline(always)]
fn filter_positions<T: Copy>(cands: &[u32], v: &[T], out: &mut Vec<u32>, f: impl Fn(T) -> bool) {
    let mut buf = [0u32; SEL_BLOCK];
    for chunk in cands.chunks(SEL_BLOCK) {
        let mut j = 0usize;
        for &p in chunk {
            buf[j] = p;
            j += f(v[p as usize]) as usize;
        }
        out.extend_from_slice(&buf[..j]);
    }
}

/// Monomorphizes the six comparison shapes over one typed slice scan.
#[inline(always)]
fn scan_cmp<T: Copy>(
    s: &[T],
    base: u32,
    out: &mut Vec<u32>,
    op: CmpOp,
    k: f64,
    conv: impl Fn(T) -> f64,
) {
    match op {
        CmpOp::Lt => scan_positions(s, base, out, |x| conv(x) < k),
        CmpOp::Le => scan_positions(s, base, out, |x| conv(x) <= k),
        CmpOp::Eq => scan_positions(s, base, out, |x| conv(x) == k),
        CmpOp::Ge => scan_positions(s, base, out, |x| conv(x) >= k),
        CmpOp::Gt => scan_positions(s, base, out, |x| conv(x) > k),
        CmpOp::Ne => scan_positions(s, base, out, |x| conv(x) != k),
    }
}

/// Monomorphizes the six comparison shapes over a candidate gather.
#[inline(always)]
fn filter_cmp<T: Copy>(
    cands: &[u32],
    v: &[T],
    out: &mut Vec<u32>,
    op: CmpOp,
    k: f64,
    conv: impl Fn(T) -> f64,
) {
    match op {
        CmpOp::Lt => filter_positions(cands, v, out, |x| conv(x) < k),
        CmpOp::Le => filter_positions(cands, v, out, |x| conv(x) <= k),
        CmpOp::Eq => filter_positions(cands, v, out, |x| conv(x) == k),
        CmpOp::Ge => filter_positions(cands, v, out, |x| conv(x) >= k),
        CmpOp::Gt => filter_positions(cands, v, out, |x| conv(x) > k),
        CmpOp::Ne => filter_positions(cands, v, out, |x| conv(x) != k),
    }
}

/// `IN (set)` membership test factory: small sets probe linearly in the
/// original order, larger sets are sorted once and binary-searched.
/// Membership is order-insensitive, so both agree with `Vec::contains`.
enum SetProbe<'a> {
    Linear(&'a [i64]),
    Sorted(Vec<i64>),
}

impl<'a> SetProbe<'a> {
    fn new(set: &'a [i64]) -> Self {
        if set.len() <= 8 {
            SetProbe::Linear(set)
        } else {
            let mut sorted = set.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            SetProbe::Sorted(sorted)
        }
    }

    #[inline(always)]
    fn contains(&self, k: i64) -> bool {
        match self {
            SetProbe::Linear(s) => s.contains(&k),
            SetProbe::Sorted(s) => s.binary_search(&k).is_ok(),
        }
    }
}

/// `thetasubselect`: positions in `[start, end)` of `col` satisfying
/// `pred`.
pub fn scan_select(col: &ColData, start: usize, end: usize, pred: &ScalarPred) -> Vec<u32> {
    let mut out = Vec::with_capacity(sel_capacity(end.saturating_sub(start)));
    let base = start as u32;
    match (col, pred) {
        (ColData::I64(v), ScalarPred::Cmp(op, k)) => {
            scan_cmp(&v[start..end], base, &mut out, *op, *k, |x| x as f64)
        }
        (ColData::F64(v), ScalarPred::Cmp(op, k)) => {
            scan_cmp(&v[start..end], base, &mut out, *op, *k, |x| x)
        }
        (ColData::I64(v), ScalarPred::Between(lo, hi)) => {
            let (lo, hi) = (*lo, *hi);
            scan_positions(&v[start..end], base, &mut out, |x| {
                let x = x as f64;
                x >= lo && x <= hi
            });
        }
        (ColData::F64(v), ScalarPred::Between(lo, hi)) => {
            let (lo, hi) = (*lo, *hi);
            scan_positions(&v[start..end], base, &mut out, |x| x >= lo && x <= hi);
        }
        (ColData::I64(v), ScalarPred::InSet(set)) => {
            let probe = SetProbe::new(set);
            scan_positions(&v[start..end], base, &mut out, |x| probe.contains(x));
        }
        (ColData::F64(v), ScalarPred::InSet(set)) => {
            let probe = SetProbe::new(set);
            scan_positions(&v[start..end], base, &mut out, |x| probe.contains(x as i64));
        }
    }
    out
}

/// `subselect`: refine candidate positions by a predicate on `col`.
pub fn select_and(cands: &[u32], col: &ColData, pred: &ScalarPred) -> Vec<u32> {
    let mut out = Vec::with_capacity(cands.len().min(16384));
    match (col, pred) {
        (ColData::I64(v), ScalarPred::Cmp(op, k)) => {
            filter_cmp(cands, v, &mut out, *op, *k, |x| x as f64)
        }
        (ColData::F64(v), ScalarPred::Cmp(op, k)) => filter_cmp(cands, v, &mut out, *op, *k, |x| x),
        (ColData::I64(v), ScalarPred::Between(lo, hi)) => {
            let (lo, hi) = (*lo, *hi);
            filter_positions(cands, v, &mut out, |x| {
                let x = x as f64;
                x >= lo && x <= hi
            });
        }
        (ColData::F64(v), ScalarPred::Between(lo, hi)) => {
            let (lo, hi) = (*lo, *hi);
            filter_positions(cands, v, &mut out, |x| x >= lo && x <= hi);
        }
        (ColData::I64(v), ScalarPred::InSet(set)) => {
            let probe = SetProbe::new(set);
            filter_positions(cands, v, &mut out, |x| probe.contains(x));
        }
        (ColData::F64(v), ScalarPred::InSet(set)) => {
            let probe = SetProbe::new(set);
            filter_positions(cands, v, &mut out, |x| probe.contains(x as i64));
        }
    }
    out
}

/// Column-vs-column compare over candidates (or a full range when
/// `cands` is `None`).
pub fn select_col_cmp(
    cands: Option<&[u32]>,
    left: &ColData,
    right: &ColData,
    op: CmpOp,
    range: (usize, usize),
) -> Vec<u32> {
    match cands {
        Some(cs) => {
            let mut out = Vec::with_capacity(cs.len().min(16384));
            match (left, right) {
                (ColData::I64(l), ColData::I64(r)) => {
                    cmp_pairs(cs, l, r, op, &mut out, |x| x as f64);
                }
                (ColData::F64(l), ColData::F64(r)) => {
                    cmp_pairs(cs, l, r, op, &mut out, |x| x);
                }
                _ => {
                    for &p in cs {
                        if op.apply(left.value_f64(p as usize), right.value_f64(p as usize)) {
                            out.push(p);
                        }
                    }
                }
            }
            out
        }
        None => {
            let (start, end) = range;
            let mut out = Vec::with_capacity(sel_capacity(end.saturating_sub(start)));
            let base = start as u32;
            match (left, right) {
                (ColData::I64(l), ColData::I64(r)) => {
                    zip_cmp(&l[start..end], &r[start..end], base, op, &mut out, |x| {
                        x as f64
                    });
                }
                (ColData::F64(l), ColData::F64(r)) => {
                    zip_cmp(&l[start..end], &r[start..end], base, op, &mut out, |x| x);
                }
                _ => {
                    for i in start..end {
                        if op.apply(left.value_f64(i), right.value_f64(i)) {
                            out.push(i as u32);
                        }
                    }
                }
            }
            out
        }
    }
}

/// Candidate-gather column-vs-column comparison, monomorphized per op.
#[inline(always)]
fn cmp_pairs<T: Copy>(
    cands: &[u32],
    l: &[T],
    r: &[T],
    op: CmpOp,
    out: &mut Vec<u32>,
    conv: impl Fn(T) -> f64 + Copy,
) {
    macro_rules! arm {
        ($cmp:tt) => {
            for &p in cands {
                let i = p as usize;
                if conv(l[i]) $cmp conv(r[i]) {
                    out.push(p);
                }
            }
        };
    }
    match op {
        CmpOp::Lt => arm!(<),
        CmpOp::Le => arm!(<=),
        CmpOp::Eq => arm!(==),
        CmpOp::Ge => arm!(>=),
        CmpOp::Gt => arm!(>),
        CmpOp::Ne => arm!(!=),
    }
}

/// Aligned column-vs-column comparison, monomorphized per op.
#[inline(always)]
fn zip_cmp<T: Copy>(
    l: &[T],
    r: &[T],
    base: u32,
    op: CmpOp,
    out: &mut Vec<u32>,
    conv: impl Fn(T) -> f64 + Copy,
) {
    macro_rules! arm {
        ($cmp:tt) => {
            for (i, (&a, &b)) in l.iter().zip(r.iter()).enumerate() {
                if conv(a) $cmp conv(b) {
                    out.push(base + i as u32);
                }
            }
        };
    }
    match op {
        CmpOp::Lt => arm!(<),
        CmpOp::Le => arm!(<=),
        CmpOp::Eq => arm!(==),
        CmpOp::Ge => arm!(>=),
        CmpOp::Gt => arm!(>),
        CmpOp::Ne => arm!(!=),
    }
}

/// A node-level output buffer for fixed-width value operators
/// (`Project`/`ProjectSide`/`BinOp`): every partition writes its slice
/// in place, so finalize hands the vector to the `Mat` without the
/// concat memcpy.
#[derive(Debug)]
pub enum ValsBuf {
    /// Integer output.
    I64(Vec<i64>),
    /// Float output.
    F64(Vec<f64>),
}

impl ValsBuf {
    /// A zeroed buffer of `len` rows matching `ty`.
    pub fn new(ty: crate::storage::bat::ColType, len: usize) -> Self {
        match ty {
            crate::storage::bat::ColType::I64 => ValsBuf::I64(vec![0; len]),
            crate::storage::bat::ColType::F64 => ValsBuf::F64(vec![0.0; len]),
        }
    }

    /// Rows.
    pub fn len(&self) -> usize {
        match self {
            ValsBuf::I64(v) => v.len(),
            ValsBuf::F64(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts into shared column data (no copy).
    pub fn into_coldata(self) -> ColData {
        match self {
            ValsBuf::I64(v) => ColData::I64(std::sync::Arc::new(v)),
            ValsBuf::F64(v) => ColData::F64(std::sync::Arc::new(v)),
        }
    }
}

/// `projection` into a node buffer slice: writes `col[positions]` to
/// `buf[start .. start + positions.len()]`.
pub fn project_into(positions: &[u32], col: &ColData, buf: &mut ValsBuf, start: usize) {
    match (col, buf) {
        (ColData::I64(v), ValsBuf::I64(b)) => {
            for (o, &p) in b[start..start + positions.len()].iter_mut().zip(positions) {
                *o = v[p as usize];
            }
        }
        (ColData::F64(v), ValsBuf::F64(b)) => {
            for (o, &p) in b[start..start + positions.len()].iter_mut().zip(positions) {
                *o = v[p as usize];
            }
        }
        _ => panic!("projection buffer type mismatch"),
    }
}

/// `batcalc` into a node buffer slice: writes the element-wise result
/// for rows `[start, end)` of the aligned inputs into the same rows of
/// `buf` (always f64).
pub fn bin_op_into(
    left: &ColData,
    right: &ColData,
    op: ArithOp,
    start: usize,
    end: usize,
    buf: &mut ValsBuf,
) {
    let ValsBuf::F64(b) = buf else {
        panic!("batcalc buffer must be f64");
    };
    let out = &mut b[start..end];
    match (left, right) {
        (ColData::F64(l), ColData::F64(r)) => {
            zip_arith_into(&l[start..end], &r[start..end], op, out, |x| x, |x| x)
        }
        (ColData::I64(l), ColData::I64(r)) => zip_arith_into(
            &l[start..end],
            &r[start..end],
            op,
            out,
            |x| x as f64,
            |x| x as f64,
        ),
        (ColData::I64(l), ColData::F64(r)) => {
            zip_arith_into(&l[start..end], &r[start..end], op, out, |x| x as f64, |x| x)
        }
        (ColData::F64(l), ColData::I64(r)) => {
            zip_arith_into(&l[start..end], &r[start..end], op, out, |x| x, |x| x as f64)
        }
    }
}

/// Typed element-wise arithmetic into a destination slice.
#[inline(always)]
fn zip_arith_into<L: Copy, R: Copy>(
    l: &[L],
    r: &[R],
    op: ArithOp,
    out: &mut [f64],
    cl: impl Fn(L) -> f64 + Copy,
    cr: impl Fn(R) -> f64 + Copy,
) {
    macro_rules! arm {
        ($f:expr) => {
            for ((o, &a), &b) in out.iter_mut().zip(l).zip(r) {
                *o = $f(cl(a), cr(b));
            }
        };
    }
    match op {
        ArithOp::Add => arm!(|a: f64, b: f64| a + b),
        ArithOp::Sub => arm!(|a: f64, b: f64| a - b),
        ArithOp::Mul => arm!(|a: f64, b: f64| a * b),
        ArithOp::MulOneMinus => arm!(|a: f64, b: f64| a * (1.0 - b)),
    }
}

/// `projection`: fetch `col[positions]`, preserving the column type.
pub fn project(positions: &[u32], col: &ColData) -> ColData {
    match col {
        ColData::I64(v) => ColData::I64(std::sync::Arc::new(
            positions.iter().map(|&p| v[p as usize]).collect(),
        )),
        ColData::F64(v) => ColData::F64(std::sync::Arc::new(
            positions.iter().map(|&p| v[p as usize]).collect(),
        )),
    }
}

/// `batcalc`: element-wise arithmetic over aligned slices.
pub fn bin_op(left: &ColData, right: &ColData, op: ArithOp, start: usize, end: usize) -> Vec<f64> {
    match (left, right) {
        (ColData::F64(l), ColData::F64(r)) => {
            zip_arith(&l[start..end], &r[start..end], op, |x| x, |x| x)
        }
        (ColData::I64(l), ColData::I64(r)) => zip_arith(
            &l[start..end],
            &r[start..end],
            op,
            |x| x as f64,
            |x| x as f64,
        ),
        (ColData::I64(l), ColData::F64(r)) => {
            zip_arith(&l[start..end], &r[start..end], op, |x| x as f64, |x| x)
        }
        (ColData::F64(l), ColData::I64(r)) => {
            zip_arith(&l[start..end], &r[start..end], op, |x| x, |x| x as f64)
        }
    }
}

/// Typed element-wise arithmetic, monomorphized per op and type pair.
#[inline(always)]
fn zip_arith<L: Copy, R: Copy>(
    l: &[L],
    r: &[R],
    op: ArithOp,
    cl: impl Fn(L) -> f64 + Copy,
    cr: impl Fn(R) -> f64 + Copy,
) -> Vec<f64> {
    let zip = l.iter().zip(r.iter());
    match op {
        ArithOp::Add => zip.map(|(&a, &b)| cl(a) + cr(b)).collect(),
        ArithOp::Sub => zip.map(|(&a, &b)| cl(a) - cr(b)).collect(),
        ArithOp::Mul => zip.map(|(&a, &b)| cl(a) * cr(b)).collect(),
        ArithOp::MulOneMinus => zip.map(|(&a, &b)| cl(a) * (1.0 - cr(b))).collect(),
    }
}

/// `aggr.sum` over a slice. Integer columns sum in the integer domain
/// (one conversion at the end instead of one per row) — identical to the
/// sequential f64 sum for the generated value ranges, where every
/// partial sum is exactly representable.
pub fn aggr_sum(values: &ColData, start: usize, end: usize) -> f64 {
    match values {
        ColData::F64(v) => v[start..end].iter().sum(),
        ColData::I64(v) => v[start..end].iter().map(|&x| x as i128).sum::<i128>() as f64,
    }
}

/// Dense group-by accumulator limit: key spans up to this wide use the
/// flat array form (covers every group domain TPC-H produces — dates,
/// priorities, cust/part/order keys at default scale); wider spans fall
/// back to hashing.
pub const DENSE_GROUP_SPAN: usize = 1 << 19;

/// Union-span limit for the all-dense `merge_groups` fast path.
const DENSE_MERGE_SPAN: usize = 1 << 20;

/// A partial group-by result. The dense form is a flat array indexed by
/// `key - base` with a presence bitmap; the hash form is the fallback
/// for wide key domains; `Pairs` carries already-reduced `(key, value)`
/// rows (top-n partials).
#[derive(Clone, Debug)]
pub enum GroupAcc {
    /// Flat accumulator over a contiguous key span.
    Dense {
        /// Smallest key in the span.
        base: i64,
        /// Per-key running aggregate, indexed by `key - base`.
        sums: Vec<f64>,
        /// Presence bitmap over the same index space.
        seen: Vec<u64>,
    },
    /// Hash fallback for wide key domains.
    Hash(FxHashMap<i64, f64>),
    /// Already-reduced unique `(key, value)` rows.
    Pairs(Vec<(i64, f64)>),
}

impl GroupAcc {
    /// An empty accumulator.
    pub fn empty() -> Self {
        GroupAcc::Hash(FxHashMap::default())
    }

    /// Number of distinct groups.
    pub fn n_groups(&self) -> usize {
        match self {
            GroupAcc::Dense { seen, .. } => seen.iter().map(|w| w.count_ones() as usize).sum(),
            GroupAcc::Hash(m) => m.len(),
            GroupAcc::Pairs(v) => v.len(),
        }
    }

    /// Visits every `(key, value)` group. Dense accumulators visit in
    /// ascending key order; each key appears exactly once.
    pub fn for_each(&self, mut f: impl FnMut(i64, f64)) {
        match self {
            GroupAcc::Dense { base, sums, seen } => {
                for (w, &word) in seen.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let b = word.trailing_zeros() as usize;
                        let idx = w * 64 + b;
                        f(base + idx as i64, sums[idx]);
                        word &= word - 1;
                    }
                }
            }
            GroupAcc::Hash(m) => {
                for (&k, &v) in m {
                    f(k, v);
                }
            }
            GroupAcc::Pairs(v) => {
                for &(k, s) in v {
                    f(k, s);
                }
            }
        }
    }

    /// The groups as a key-sorted vector.
    pub fn into_sorted(self) -> Vec<(i64, f64)> {
        let mut out = Vec::with_capacity(self.n_groups());
        self.for_each(|k, v| out.push((k, v)));
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

/// Min/max of a key slice — the span measurement behind both the dense
/// group-by cutoff and the direct-addressed join layout. `(i64::MAX,
/// i64::MIN)` for an empty slice.
pub(crate) fn key_bounds(keys: &[i64]) -> (i64, i64) {
    let (mut lo, mut hi) = (i64::MAX, i64::MIN);
    for &k in keys {
        lo = lo.min(k);
        hi = hi.max(k);
    }
    (lo, hi)
}

#[inline(always)]
fn dense_mark(seen: &mut [u64], idx: usize) {
    seen[idx / 64] |= 1u64 << (idx % 64);
}

/// ORs `src` into `dst` at a bit offset of `off` (word-level shifts, not
/// per-bit probes — the dense merge is bitmap-bound for sparse groups).
fn or_shifted(dst: &mut [u64], src: &[u64], off: usize) {
    let (w, s) = (off / 64, off % 64);
    if s == 0 {
        for (d, &x) in dst[w..].iter_mut().zip(src) {
            *d |= x;
        }
    } else {
        let mut carry = 0u64;
        for (i, &x) in src.iter().enumerate() {
            dst[w + i] |= (x << s) | carry;
            carry = x >> (64 - s);
        }
        if carry != 0 {
            dst[w + src.len()] |= carry;
        }
    }
}

/// Partial hash group-by over aligned key/value slices. Small key
/// domains accumulate into a flat dense array; wide domains hash.
pub fn group_agg(
    keys: &ColData,
    values: Option<&ColData>,
    agg: AggKind,
    start: usize,
    end: usize,
) -> GroupAcc {
    if start >= end {
        return GroupAcc::empty();
    }
    if let (AggKind::Sum, None) = (agg, values) {
        panic!("Sum aggregate without a value column");
    }
    let ColData::I64(kv) = keys else {
        // Float key columns are not produced by the planner; keep the
        // straightforward per-row path for completeness.
        return GroupAcc::Hash(reference::group_agg(keys, values, agg, start, end));
    };
    let ks = &kv[start..end];
    let (lo, hi) = key_bounds(ks);
    let span = (hi as i128 - lo as i128) + 1;
    // Dense pays a span-sized zeroing up front: only worth it when the
    // partition has enough rows to amortise it (the representation is
    // merge-compatible either way, so the cutoff is pure tuning).
    if span <= DENSE_GROUP_SPAN as i128 && span <= 8 * (end - start) as i128 {
        let span = span as usize;
        let mut sums = vec![0.0f64; span];
        let mut seen = vec![0u64; span.div_ceil(64)];
        match (agg, values) {
            (AggKind::Count, _) => {
                for &k in ks {
                    let idx = (k - lo) as usize;
                    sums[idx] += 1.0;
                    dense_mark(&mut seen, idx);
                }
            }
            (AggKind::Sum, Some(ColData::F64(vv))) => {
                for (&k, &v) in ks.iter().zip(&vv[start..end]) {
                    let idx = (k - lo) as usize;
                    sums[idx] += v;
                    dense_mark(&mut seen, idx);
                }
            }
            (AggKind::Sum, Some(ColData::I64(vv))) => {
                for (&k, &v) in ks.iter().zip(&vv[start..end]) {
                    let idx = (k - lo) as usize;
                    sums[idx] += v as f64;
                    dense_mark(&mut seen, idx);
                }
            }
            (AggKind::Sum, None) => unreachable!("checked above"),
        }
        GroupAcc::Dense {
            base: lo,
            sums,
            seen,
        }
    } else {
        // Wide-domain fallback: group count is unknown but bounded by
        // the row count; reserving it up front avoids the rehash ladder
        // (each doubling re-inserts everything).
        let mut m = FxHashMap::with_capacity_and_hasher(end - start, Default::default());
        match (agg, values) {
            (AggKind::Count, _) => {
                for &k in ks {
                    *m.entry(k).or_insert(0.0) += 1.0;
                }
            }
            (AggKind::Sum, Some(ColData::F64(vv))) => {
                for (&k, &v) in ks.iter().zip(&vv[start..end]) {
                    *m.entry(k).or_insert(0.0) += v;
                }
            }
            (AggKind::Sum, Some(ColData::I64(vv))) => {
                for (&k, &v) in ks.iter().zip(&vv[start..end]) {
                    *m.entry(k).or_insert(0.0) += v as f64;
                }
            }
            (AggKind::Sum, None) => unreachable!("checked above"),
        }
        GroupAcc::Hash(m)
    }
}

/// Merges partial group accumulators into a sorted groups vector.
/// Partials are combined in order, so per-key addition order (and
/// therefore every float total) matches the sequential merge exactly.
pub fn merge_groups(parts: impl IntoIterator<Item = GroupAcc>) -> Vec<(i64, f64)> {
    let parts: Vec<GroupAcc> = parts.into_iter().collect();
    match parts.len() {
        0 => return Vec::new(),
        1 => return parts.into_iter().next().expect("one part").into_sorted(),
        _ => {}
    }
    // All-dense fast path: merge on the flat arrays.
    let dense_bounds = parts.iter().try_fold((i64::MAX, i64::MIN), |(lo, hi), p| {
        if let GroupAcc::Dense { base, sums, .. } = p {
            Some((lo.min(*base), hi.max(*base + sums.len() as i64 - 1)))
        } else {
            None
        }
    });
    if let Some((lo, hi)) = dense_bounds {
        let span = (hi as i128 - lo as i128) + 1;
        if span <= DENSE_MERGE_SPAN as i128 {
            let span = span as usize;
            let mut sums = vec![0.0f64; span];
            let mut seen = vec![0u64; span.div_ceil(64)];
            for part in &parts {
                let GroupAcc::Dense {
                    base,
                    sums: ps,
                    seen: pseen,
                } = part
                else {
                    unreachable!("dense_bounds only resolves for all-dense parts");
                };
                let off = (base - lo) as usize;
                // Unconditional slice add: unseen entries hold exactly
                // +0.0, and `x + 0.0 == x` for every x the engine can
                // produce (no -0.0 group totals from the generated
                // data), so totals match the seen-only merge bit for
                // bit while the loop stays branch-free and vector-wide.
                for (d, &v) in sums[off..off + ps.len()].iter_mut().zip(ps) {
                    *d += v;
                }
                or_shifted(&mut seen, pseen, off);
            }
            return GroupAcc::Dense {
                base: lo,
                sums,
                seen,
            }
            .into_sorted();
        }
    }
    let cap: usize = parts.iter().map(GroupAcc::n_groups).sum();
    let mut total: FxHashMap<i64, f64> =
        FxHashMap::with_capacity_and_hasher(cap, Default::default());
    for part in &parts {
        part.for_each(|k, v| *total.entry(k).or_insert(0.0) += v);
    }
    let mut out: Vec<(i64, f64)> = total.into_iter().collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Partial hash-join build: the partition's key values, contiguous with
/// the global build-row index space (partition `[start, end)` produces
/// keys for global rows `start..end`, so partials concatenate directly).
/// The actual bucket linking happens once, at merge, in
/// [`FlatJoinMap::from_parts`](crate::exec::mat::FlatJoinMap::from_parts) — no per-key allocation, no re-hash.
pub fn build_hash_part(keys: &ColData, start: usize, end: usize) -> Vec<i64> {
    match keys {
        ColData::I64(v) => v[start..end].to_vec(),
        ColData::F64(v) => v[start..end].iter().map(|&x| x as i64).collect(),
    }
}

/// Probe: for probe rows `[start, end)` of `probe_keys`, emit
/// `(probe_base_pos, build_base_pos)` for every match. Base positions are
/// resolved through the provenance maps (`None` = the key vector indexes
/// the base table directly); resolution shape is hoisted out of the
/// match loop. Matches per key are emitted in ascending build index —
/// the same order the per-key vectors used to store.
pub fn probe_hash(
    table: &JoinTable,
    probe_keys: &ColData,
    probe_origin: Option<&[u32]>,
    build_origin: Option<&[u32]>,
    start: usize,
    end: usize,
) -> (Vec<u32>, Vec<u32>) {
    // Modest initial reservation: fan-out is unknown, and reserving the
    // full probe width per task costs fresh kernel pages (the partials
    // outlive the call, so buffers cannot be pooled). Doubling from a
    // block-sized floor amortises the growth.
    let cap = (end.saturating_sub(start)).clamp(16, 16384);
    let mut probe_out = Vec::with_capacity(cap);
    let mut build_out = Vec::with_capacity(cap);
    let map = &table.map;
    macro_rules! walk {
        ($key_of:expr, $pres:expr, $bres:expr) => {
            for i in start..end {
                map.for_each_match($key_of(i), |b| {
                    probe_out.push($pres(i));
                    build_out.push($bres(b));
                });
            }
        };
    }
    macro_rules! dispatch_origins {
        ($key_of:expr) => {
            match (probe_origin, build_origin) {
                (None, None) => walk!($key_of, |i| i as u32, |b| b),
                (Some(po), None) => walk!($key_of, |i: usize| po[i], |b| b),
                (None, Some(bo)) => walk!($key_of, |i| i as u32, |b: u32| bo[b as usize]),
                (Some(po), Some(bo)) => walk!($key_of, |i: usize| po[i], |b: u32| bo[b as usize]),
            }
        };
    }
    match probe_keys {
        ColData::I64(v) => dispatch_origins!(|i: usize| v[i]),
        ColData::F64(v) => dispatch_origins!(|i: usize| v[i] as i64),
    }
    (probe_out, build_out)
}

/// Top-N groups by aggregate value, descending (ties by key for
/// determinism). Partitions with `select_nth_unstable_by` and sorts only
/// the kept prefix instead of fully sorting every group.
pub fn top_n(groups: &[(i64, f64)], n: usize) -> Vec<(i64, f64)> {
    let cmp = |a: &(i64, f64), b: &(i64, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));
    if n == 0 {
        return Vec::new();
    }
    let mut kept = groups.to_vec();
    if kept.len() > n {
        kept.select_nth_unstable_by(n - 1, cmp);
        kept.truncate(n);
    }
    kept.sort_unstable_by(cmp);
    kept
}

/// The straightforward per-row formulations the typed kernels replaced.
///
/// Retained as the *reference semantics*: the property tests assert the
/// kernels agree with these on every predicate form and column type, and
/// the operator benches run both so `BENCH_operators.json` tracks the
/// before/after spread.
pub mod reference {
    use super::*;

    /// Per-row `scan_select`.
    pub fn scan_select(col: &ColData, start: usize, end: usize, pred: &ScalarPred) -> Vec<u32> {
        (start..end)
            .filter(|&r| pred.test(col, r))
            .map(|r| r as u32)
            .collect()
    }

    /// Per-row `select_and`.
    pub fn select_and(cands: &[u32], col: &ColData, pred: &ScalarPred) -> Vec<u32> {
        cands
            .iter()
            .copied()
            .filter(|&p| pred.test(col, p as usize))
            .collect()
    }

    /// Per-row `select_col_cmp`.
    pub fn select_col_cmp(
        cands: Option<&[u32]>,
        left: &ColData,
        right: &ColData,
        op: CmpOp,
        range: (usize, usize),
    ) -> Vec<u32> {
        match cands {
            Some(cs) => cs
                .iter()
                .copied()
                .filter(|&p| op.apply(left.value_f64(p as usize), right.value_f64(p as usize)))
                .collect(),
            None => (range.0..range.1)
                .filter(|&r| op.apply(left.value_f64(r), right.value_f64(r)))
                .map(|r| r as u32)
                .collect(),
        }
    }

    /// Per-row `bin_op`.
    pub fn bin_op(
        left: &ColData,
        right: &ColData,
        op: ArithOp,
        start: usize,
        end: usize,
    ) -> Vec<f64> {
        (start..end)
            .map(|i| op.apply(left.value_f64(i), right.value_f64(i)))
            .collect()
    }

    /// Per-row `aggr_sum`.
    pub fn aggr_sum(values: &ColData, start: usize, end: usize) -> f64 {
        (start..end).map(|i| values.value_f64(i)).sum()
    }

    /// Per-row hash group-by.
    pub fn group_agg(
        keys: &ColData,
        values: Option<&ColData>,
        agg: AggKind,
        start: usize,
        end: usize,
    ) -> FxHashMap<i64, f64> {
        let mut m =
            FxHashMap::with_capacity_and_hasher((end - start).min(4096), Default::default());
        for i in start..end {
            let k = keys.value_i64(i);
            let v = match (agg, values) {
                (AggKind::Sum, Some(vals)) => vals.value_f64(i),
                (AggKind::Count, _) => 1.0,
                (AggKind::Sum, None) => panic!("Sum aggregate without a value column"),
            };
            *m.entry(k).or_insert(0.0) += v;
        }
        m
    }

    /// Merges reference group maps into a sorted groups vector.
    pub fn merge_groups(parts: impl IntoIterator<Item = FxHashMap<i64, f64>>) -> Vec<(i64, f64)> {
        let parts: Vec<FxHashMap<i64, f64>> = parts.into_iter().collect();
        let cap: usize = parts.iter().map(FxHashMap::len).sum();
        let mut total: FxHashMap<i64, f64> =
            FxHashMap::with_capacity_and_hasher(cap, Default::default());
        for part in parts {
            for (k, v) in part {
                *total.entry(k).or_insert(0.0) += v;
            }
        }
        let mut out: Vec<(i64, f64)> = total.into_iter().collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Per-key-`Vec` hash-join build.
    pub fn build_hash(keys: &ColData, start: usize, end: usize) -> FxHashMap<i64, Vec<u32>> {
        let mut m: FxHashMap<i64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(end - start, Default::default());
        for i in start..end {
            m.entry(keys.value_i64(i)).or_default().push(i as u32);
        }
        m
    }

    /// Merges reference build maps (capacity-hinted from partial sizes).
    pub fn merge_hash(
        parts: impl IntoIterator<Item = FxHashMap<i64, Vec<u32>>>,
    ) -> FxHashMap<i64, Vec<u32>> {
        let parts: Vec<FxHashMap<i64, Vec<u32>>> = parts.into_iter().collect();
        let cap: usize = parts.iter().map(FxHashMap::len).sum();
        let mut total: FxHashMap<i64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(cap, Default::default());
        for part in parts {
            for (k, mut v) in part {
                total.entry(k).or_default().append(&mut v);
            }
        }
        total
    }

    /// Reference probe over the per-key-`Vec` map form.
    pub fn probe_hash(
        map: &FxHashMap<i64, Vec<u32>>,
        probe_keys: &ColData,
        probe_origin: Option<&[u32]>,
        build_origin: Option<&[u32]>,
        start: usize,
        end: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut probe_out = Vec::new();
        let mut build_out = Vec::new();
        for i in start..end {
            if let Some(matches) = map.get(&probe_keys.value_i64(i)) {
                let p_base = probe_origin.map_or(i as u32, |o| o[i]);
                for &b in matches {
                    let b_base = build_origin.map_or(b, |o| o[b as usize]);
                    probe_out.push(p_base);
                    build_out.push(b_base);
                }
            }
        }
        (probe_out, build_out)
    }

    /// Clone-and-fully-sort top-n.
    pub fn top_n(groups: &[(i64, f64)], n: usize) -> Vec<(i64, f64)> {
        let mut sorted = groups.to_vec();
        sorted.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        sorted.truncate(n);
        sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::mat::FlatJoinMap;
    use std::sync::Arc;

    fn f64s(v: Vec<f64>) -> ColData {
        ColData::F64(Arc::new(v))
    }

    fn i64s(v: Vec<i64>) -> ColData {
        ColData::I64(Arc::new(v))
    }

    #[test]
    fn scan_select_matches_filter() {
        let c = f64s(vec![5.0, 30.0, 10.0, 23.9, 24.0]);
        let pred = ScalarPred::Cmp(CmpOp::Lt, 24.0);
        assert_eq!(scan_select(&c, 0, 5, &pred), vec![0, 2, 3]);
        // partition subrange
        assert_eq!(scan_select(&c, 2, 5, &pred), vec![2, 3]);
    }

    #[test]
    fn preds_cover_all_forms() {
        let c = f64s(vec![0.05, 0.07, 0.09]);
        assert!(ScalarPred::Between(0.06, 0.08).test(&c, 1));
        assert!(!ScalarPred::Between(0.06, 0.08).test(&c, 0));
        let k = i64s(vec![3, 5, 7]);
        assert!(ScalarPred::InSet(vec![5, 9]).test(&k, 1));
        assert!(!ScalarPred::InSet(vec![5, 9]).test(&k, 2));
    }

    #[test]
    fn in_set_large_sets_sort_and_probe() {
        // > 8 elements exercises the sorted binary-search path.
        let set: Vec<i64> = vec![90, 10, 20, 30, 40, 50, 60, 70, 80, 10];
        let c = i64s((0..100).collect());
        let pred = ScalarPred::InSet(set.clone());
        let fast = scan_select(&c, 0, 100, &pred);
        let slow = reference::scan_select(&c, 0, 100, &pred);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 9);
    }

    #[test]
    fn select_and_refines() {
        let c = f64s(vec![1.0, 2.0, 3.0, 4.0]);
        let cands = vec![1, 3];
        let out = select_and(&cands, &c, &ScalarPred::Cmp(CmpOp::Gt, 2.5));
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn col_cmp_both_modes() {
        let a = i64s(vec![1, 5, 3]);
        let b = i64s(vec![2, 4, 3]);
        assert_eq!(select_col_cmp(None, &a, &b, CmpOp::Lt, (0, 3)), vec![0]);
        assert_eq!(
            select_col_cmp(Some(&[1, 2]), &a, &b, CmpOp::Ge, (0, 0)),
            vec![1, 2]
        );
    }

    #[test]
    fn col_cmp_mixed_types_fall_back() {
        let a = i64s(vec![1, 5, 3]);
        let b = f64s(vec![2.0, 4.0, 3.0]);
        assert_eq!(select_col_cmp(None, &a, &b, CmpOp::Lt, (0, 3)), vec![0]);
        assert_eq!(
            select_col_cmp(Some(&[0, 1, 2]), &a, &b, CmpOp::Eq, (0, 0)),
            vec![2]
        );
    }

    #[test]
    fn project_preserves_type() {
        let c = i64s(vec![10, 20, 30]);
        let out = project(&[2, 0], &c);
        assert_eq!(out.as_i64(), &[30, 10]);
        let f = f64s(vec![1.5, 2.5]);
        assert_eq!(project(&[1], &f).as_f64(), &[2.5]);
    }

    #[test]
    fn binop_and_sum() {
        let l = f64s(vec![100.0, 200.0]);
        let r = f64s(vec![0.1, 0.2]);
        assert_eq!(bin_op(&l, &r, ArithOp::Mul, 0, 2), vec![10.0, 40.0]);
        assert_eq!(aggr_sum(&f64s(vec![1.0, 2.0, 3.0]), 0, 3), 6.0);
        assert_eq!(aggr_sum(&f64s(vec![1.0, 2.0, 3.0]), 1, 2), 2.0);
        // Integer sum stays in the integer domain.
        assert_eq!(aggr_sum(&i64s(vec![2, 3, 4]), 0, 3), 9.0);
    }

    #[test]
    fn binop_typed_combinations() {
        let l = i64s(vec![10, 20]);
        let r = f64s(vec![0.5, 0.25]);
        assert_eq!(bin_op(&l, &r, ArithOp::MulOneMinus, 0, 2), vec![5.0, 15.0]);
        assert_eq!(bin_op(&r, &l, ArithOp::Add, 0, 2), vec![10.5, 20.25]);
        let r2 = i64s(vec![1, 2]);
        assert_eq!(bin_op(&l, &r2, ArithOp::Sub, 0, 2), vec![9.0, 18.0]);
    }

    #[test]
    fn group_agg_sum_and_count() {
        let keys = i64s(vec![1, 2, 1, 2, 1]);
        let vals = f64s(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        let m = group_agg(&keys, Some(&vals), AggKind::Sum, 0, 5);
        assert!(matches!(m, GroupAcc::Dense { .. }));
        assert_eq!(m.n_groups(), 2);
        let c = group_agg(&keys, None, AggKind::Count, 0, 5);
        let merged = merge_groups([m, c]);
        assert_eq!(merged, vec![(1, 93.0), (2, 62.0)]);
    }

    #[test]
    fn group_agg_wide_domain_hashes() {
        let keys = i64s(vec![0, 1 << 30, 0]);
        let vals = f64s(vec![1.0, 2.0, 3.0]);
        let acc = group_agg(&keys, Some(&vals), AggKind::Sum, 0, 3);
        assert!(matches!(acc, GroupAcc::Hash(_)));
        assert_eq!(acc.into_sorted(), vec![(0, 4.0), (1 << 30, 2.0)]);
    }

    #[test]
    fn merge_groups_mixed_forms() {
        // One dense, one hash, one pairs partial — per-key totals must
        // still combine in part order.
        let dense = group_agg(
            &i64s(vec![5, 6, 5]),
            Some(&f64s(vec![1.0, 2.0, 3.0])),
            AggKind::Sum,
            0,
            3,
        );
        let mut h = FxHashMap::default();
        h.insert(6i64, 10.0);
        h.insert(99i64, 1.0);
        let pairs = GroupAcc::Pairs(vec![(5, 0.5)]);
        let merged = merge_groups([dense, GroupAcc::Hash(h), pairs]);
        assert_eq!(merged, vec![(5, 4.5), (6, 12.0), (99, 1.0)]);
    }

    #[test]
    fn hash_join_roundtrip() {
        let build_keys = i64s(vec![10, 20, 10]);
        let table = JoinTable {
            map: FlatJoinMap::from_parts([build_hash_part(&build_keys, 0, 3)]),
            build_origin: None,
            build_table: "orders",
        };
        let probe_keys = i64s(vec![20, 10, 99]);
        let (p, b) = probe_hash(&table, &probe_keys, None, None, 0, 3);
        // probe row 0 matches build row 1; probe row 1 matches build 0 and 2.
        assert_eq!(p, vec![0, 1, 1]);
        assert_eq!(b, vec![1, 0, 2]);
    }

    #[test]
    fn flat_join_partials_concatenate() {
        // Two partitions of the build keys merge by concatenation; the
        // probe still sees ascending global build indices per key.
        let build_keys = i64s(vec![7, 8, 7, 7]);
        let table = JoinTable {
            map: FlatJoinMap::from_parts([
                build_hash_part(&build_keys, 0, 2),
                build_hash_part(&build_keys, 2, 4),
            ]),
            build_origin: None,
            build_table: "orders",
        };
        let probe_keys = i64s(vec![7]);
        let (p, b) = probe_hash(&table, &probe_keys, None, None, 0, 1);
        assert_eq!(p, vec![0, 0, 0]);
        assert_eq!(b, vec![0, 2, 3]);
    }

    #[test]
    fn probe_resolves_provenance() {
        let build_keys = i64s(vec![7]);
        let table = JoinTable {
            map: FlatJoinMap::from_parts([build_hash_part(&build_keys, 0, 1)]),
            build_origin: None,
            build_table: "orders",
        };
        let probe_keys = i64s(vec![7]);
        let probe_origin = vec![42u32];
        let build_origin = vec![99u32];
        let (p, b) = probe_hash(
            &table,
            &probe_keys,
            Some(&probe_origin),
            Some(&build_origin),
            0,
            1,
        );
        assert_eq!(p, vec![42]);
        assert_eq!(b, vec![99]);
    }

    #[test]
    fn top_n_orders_descending() {
        let g = vec![(1, 5.0), (2, 9.0), (3, 9.0), (4, 1.0)];
        assert_eq!(top_n(&g, 2), vec![(2, 9.0), (3, 9.0)]);
        assert_eq!(top_n(&g, 10).len(), 4);
        assert!(top_n(&g, 0).is_empty());
        assert_eq!(top_n(&g, 2), reference::top_n(&g, 2));
    }

    #[test]
    fn scan_select_equals_naive_reference() {
        // Property-style check against an independent reference.
        let vals: Vec<f64> = (0..1000).map(|i| (i * 37 % 100) as f64).collect();
        let c = f64s(vals.clone());
        let pred = ScalarPred::Between(20.0, 60.0);
        let fast = scan_select(&c, 0, 1000, &pred);
        let slow: Vec<u32> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| (20.0..=60.0).contains(&v))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(fast, slow);
    }
}
