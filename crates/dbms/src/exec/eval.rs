//! Genuine operator evaluation.
//!
//! Operators compute real results over the generated columns, so
//! selectivities, join fan-outs and group cardinalities are authentic —
//! the simulation only *times* the work, it does not fake the data flow.
//! All functions operate on partition slices so tasks can evaluate their
//! chunk independently.

use crate::exec::mat::JoinTable;
use crate::exec::plan::{AggKind, ArithOp, CmpOp, ScalarPred};
use crate::storage::bat::ColData;
use emca_metrics::FxHashMap;

impl ScalarPred {
    /// Tests one value (integer columns compare exactly in f64 for the
    /// generated ranges; `InSet` uses the i64 view).
    #[inline]
    pub fn test(&self, data: &ColData, row: usize) -> bool {
        match self {
            ScalarPred::Cmp(op, k) => op.apply(data.value_f64(row), *k),
            ScalarPred::Between(lo, hi) => {
                let v = data.value_f64(row);
                v >= *lo && v <= *hi
            }
            ScalarPred::InSet(set) => set.contains(&data.value_i64(row)),
        }
    }
}

/// `thetasubselect`: positions in `[start, end)` of `col` satisfying
/// `pred`.
pub fn scan_select(col: &ColData, start: usize, end: usize, pred: &ScalarPred) -> Vec<u32> {
    (start..end)
        .filter(|&r| pred.test(col, r))
        .map(|r| r as u32)
        .collect()
}

/// `subselect`: refine candidate positions by a predicate on `col`.
pub fn select_and(cands: &[u32], col: &ColData, pred: &ScalarPred) -> Vec<u32> {
    cands
        .iter()
        .copied()
        .filter(|&p| pred.test(col, p as usize))
        .collect()
}

/// Column-vs-column compare over candidates (or a full range when
/// `cands` is `None`).
pub fn select_col_cmp(
    cands: Option<&[u32]>,
    left: &ColData,
    right: &ColData,
    op: CmpOp,
    range: (usize, usize),
) -> Vec<u32> {
    match cands {
        Some(cs) => cs
            .iter()
            .copied()
            .filter(|&p| op.apply(left.value_f64(p as usize), right.value_f64(p as usize)))
            .collect(),
        None => (range.0..range.1)
            .filter(|&r| op.apply(left.value_f64(r), right.value_f64(r)))
            .map(|r| r as u32)
            .collect(),
    }
}

/// `projection`: fetch `col[positions]`, preserving the column type.
pub fn project(positions: &[u32], col: &ColData) -> ColData {
    match col {
        ColData::I64(v) => ColData::I64(std::sync::Arc::new(
            positions.iter().map(|&p| v[p as usize]).collect(),
        )),
        ColData::F64(v) => ColData::F64(std::sync::Arc::new(
            positions.iter().map(|&p| v[p as usize]).collect(),
        )),
    }
}

/// `batcalc`: element-wise arithmetic over aligned slices.
pub fn bin_op(left: &ColData, right: &ColData, op: ArithOp, start: usize, end: usize) -> Vec<f64> {
    (start..end)
        .map(|i| op.apply(left.value_f64(i), right.value_f64(i)))
        .collect()
}

/// `aggr.sum` over a slice.
pub fn aggr_sum(values: &ColData, start: usize, end: usize) -> f64 {
    (start..end).map(|i| values.value_f64(i)).sum()
}

/// Partial hash group-by over aligned key/value slices.
pub fn group_agg(
    keys: &ColData,
    values: Option<&ColData>,
    agg: AggKind,
    start: usize,
    end: usize,
) -> FxHashMap<i64, f64> {
    let mut m = FxHashMap::with_capacity_and_hasher((end - start).min(4096), Default::default());
    for i in start..end {
        let k = keys.value_i64(i);
        let v = match (agg, values) {
            (AggKind::Sum, Some(vals)) => vals.value_f64(i),
            (AggKind::Count, _) => 1.0,
            (AggKind::Sum, None) => panic!("Sum aggregate without a value column"),
        };
        *m.entry(k).or_insert(0.0) += v;
    }
    m
}

/// Merges partial group maps into a sorted groups vector.
pub fn merge_groups(parts: impl IntoIterator<Item = FxHashMap<i64, f64>>) -> Vec<(i64, f64)> {
    let mut total: FxHashMap<i64, f64> = FxHashMap::default();
    for part in parts {
        for (k, v) in part {
            *total.entry(k).or_insert(0.0) += v;
        }
    }
    let mut out: Vec<(i64, f64)> = total.into_iter().collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

/// Partial hash-join build: key → indices (offset by `base` so partials
/// concatenate into global key-vector indices).
pub fn build_hash(keys: &ColData, start: usize, end: usize) -> FxHashMap<i64, Vec<u32>> {
    let mut m: FxHashMap<i64, Vec<u32>> =
        FxHashMap::with_capacity_and_hasher(end - start, Default::default());
    for i in start..end {
        m.entry(keys.value_i64(i)).or_default().push(i as u32);
    }
    m
}

/// Merges partial build maps.
pub fn merge_hash(
    parts: impl IntoIterator<Item = FxHashMap<i64, Vec<u32>>>,
) -> FxHashMap<i64, Vec<u32>> {
    let mut total: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
    for part in parts {
        for (k, mut v) in part {
            total.entry(k).or_default().append(&mut v);
        }
    }
    total
}

/// Probe: for probe rows `[start, end)` of `probe_keys`, emit
/// `(probe_base_pos, build_base_pos)` for every match. Base positions are
/// resolved through the provenance maps (`None` = the key vector indexes
/// the base table directly).
pub fn probe_hash(
    table: &JoinTable,
    probe_keys: &ColData,
    probe_origin: Option<&[u32]>,
    build_origin: Option<&[u32]>,
    start: usize,
    end: usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut probe_out = Vec::new();
    let mut build_out = Vec::new();
    for i in start..end {
        if let Some(matches) = table.map.get(&probe_keys.value_i64(i)) {
            let p_base = probe_origin.map_or(i as u32, |o| o[i]);
            for &b in matches {
                let b_base = build_origin.map_or(b, |o| o[b as usize]);
                probe_out.push(p_base);
                build_out.push(b_base);
            }
        }
    }
    (probe_out, build_out)
}

/// Top-N groups by aggregate value, descending (ties by key for
/// determinism).
pub fn top_n(groups: &[(i64, f64)], n: usize) -> Vec<(i64, f64)> {
    let mut sorted = groups.to_vec();
    sorted.sort_unstable_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("NaN aggregate")
            .then(a.0.cmp(&b.0))
    });
    sorted.truncate(n);
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn f64s(v: Vec<f64>) -> ColData {
        ColData::F64(Arc::new(v))
    }

    fn i64s(v: Vec<i64>) -> ColData {
        ColData::I64(Arc::new(v))
    }

    #[test]
    fn scan_select_matches_filter() {
        let c = f64s(vec![5.0, 30.0, 10.0, 23.9, 24.0]);
        let pred = ScalarPred::Cmp(CmpOp::Lt, 24.0);
        assert_eq!(scan_select(&c, 0, 5, &pred), vec![0, 2, 3]);
        // partition subrange
        assert_eq!(scan_select(&c, 2, 5, &pred), vec![2, 3]);
    }

    #[test]
    fn preds_cover_all_forms() {
        let c = f64s(vec![0.05, 0.07, 0.09]);
        assert!(ScalarPred::Between(0.06, 0.08).test(&c, 1));
        assert!(!ScalarPred::Between(0.06, 0.08).test(&c, 0));
        let k = i64s(vec![3, 5, 7]);
        assert!(ScalarPred::InSet(vec![5, 9]).test(&k, 1));
        assert!(!ScalarPred::InSet(vec![5, 9]).test(&k, 2));
    }

    #[test]
    fn select_and_refines() {
        let c = f64s(vec![1.0, 2.0, 3.0, 4.0]);
        let cands = vec![1, 3];
        let out = select_and(&cands, &c, &ScalarPred::Cmp(CmpOp::Gt, 2.5));
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn col_cmp_both_modes() {
        let a = i64s(vec![1, 5, 3]);
        let b = i64s(vec![2, 4, 3]);
        assert_eq!(select_col_cmp(None, &a, &b, CmpOp::Lt, (0, 3)), vec![0]);
        assert_eq!(
            select_col_cmp(Some(&[1, 2]), &a, &b, CmpOp::Ge, (0, 0)),
            vec![1, 2]
        );
    }

    #[test]
    fn project_preserves_type() {
        let c = i64s(vec![10, 20, 30]);
        let out = project(&[2, 0], &c);
        assert_eq!(out.as_i64(), &[30, 10]);
        let f = f64s(vec![1.5, 2.5]);
        assert_eq!(project(&[1], &f).as_f64(), &[2.5]);
    }

    #[test]
    fn binop_and_sum() {
        let l = f64s(vec![100.0, 200.0]);
        let r = f64s(vec![0.1, 0.2]);
        assert_eq!(bin_op(&l, &r, ArithOp::Mul, 0, 2), vec![10.0, 40.0]);
        assert_eq!(aggr_sum(&f64s(vec![1.0, 2.0, 3.0]), 0, 3), 6.0);
        assert_eq!(aggr_sum(&f64s(vec![1.0, 2.0, 3.0]), 1, 2), 2.0);
    }

    #[test]
    fn group_agg_sum_and_count() {
        let keys = i64s(vec![1, 2, 1, 2, 1]);
        let vals = f64s(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        let m = group_agg(&keys, Some(&vals), AggKind::Sum, 0, 5);
        assert_eq!(m[&1], 90.0);
        assert_eq!(m[&2], 60.0);
        let c = group_agg(&keys, None, AggKind::Count, 0, 5);
        assert_eq!(c[&1], 3.0);
        let merged = merge_groups([m, c]);
        assert_eq!(merged, vec![(1, 93.0), (2, 62.0)]);
    }

    #[test]
    fn hash_join_roundtrip() {
        let build_keys = i64s(vec![10, 20, 10]);
        let table = JoinTable {
            map: merge_hash([build_hash(&build_keys, 0, 3)]),
            n_rows: 3,
            build_origin: None,
            build_table: "orders",
        };
        let probe_keys = i64s(vec![20, 10, 99]);
        let (p, b) = probe_hash(&table, &probe_keys, None, None, 0, 3);
        // probe row 0 matches build row 1; probe row 1 matches build 0 and 2.
        assert_eq!(p, vec![0, 1, 1]);
        assert_eq!(b, vec![1, 0, 2]);
    }

    #[test]
    fn probe_resolves_provenance() {
        let build_keys = i64s(vec![7]);
        let table = JoinTable {
            map: build_hash(&build_keys, 0, 1),
            n_rows: 1,
            build_origin: None,
            build_table: "orders",
        };
        let probe_keys = i64s(vec![7]);
        let probe_origin = vec![42u32];
        let build_origin = vec![99u32];
        let (p, b) = probe_hash(
            &table,
            &probe_keys,
            Some(&probe_origin),
            Some(&build_origin),
            0,
            1,
        );
        assert_eq!(p, vec![42]);
        assert_eq!(b, vec![99]);
    }

    #[test]
    fn top_n_orders_descending() {
        let g = vec![(1, 5.0), (2, 9.0), (3, 9.0), (4, 1.0)];
        assert_eq!(top_n(&g, 2), vec![(2, 9.0), (3, 9.0)]);
        assert_eq!(top_n(&g, 10).len(), 4);
    }

    #[test]
    fn scan_select_equals_naive_reference() {
        // Property-style check against an independent reference.
        let vals: Vec<f64> = (0..1000).map(|i| (i * 37 % 100) as f64).collect();
        let c = f64s(vals.clone());
        let pred = ScalarPred::Between(20.0, 60.0);
        let fast = scan_select(&c, 0, 1000, &pred);
        let slow: Vec<u32> = vals
            .iter()
            .enumerate()
            .filter(|(_, &v)| (20.0..=60.0).contains(&v))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(fast, slow);
    }
}
