//! Materialised intermediates.
//!
//! MonetDB is operator-at-a-time: every operator fully materialises its
//! result BAT before dependents run. [`Mat`] is the in-memory value of a
//! completed plan node; [`NodeStorage`] is its *simulated* backing memory.
//! Because every partition task allocates and first-touches its own slice
//! of the output, intermediates end up homed across the NUMA nodes that
//! executed the operator — the effect the adaptive priority mode tracks.

use crate::storage::bat::{ColData, ROWS_PER_SEG};
use numa_sim::{Region, SegId};
use std::sync::Arc;

/// A selection vector over a base table.
#[derive(Clone, Debug)]
pub struct PosMat {
    /// The base table the positions index into.
    pub table: &'static str,
    /// Sorted row positions.
    pub pos: Arc<Vec<u32>>,
}

/// A value vector, optionally carrying the positions it was projected
/// through (provenance, used by join sides).
#[derive(Clone, Debug)]
pub struct ValMat {
    /// The values.
    pub data: ColData,
    /// Where row `i` of `data` came from, if projected from a base table.
    pub origin: Option<PosMat>,
}

/// Matched join pairs, already mapped back to base-table positions on
/// both sides.
#[derive(Clone, Debug)]
pub struct PairsMat {
    /// Probe-side base positions (one entry per match).
    pub probe: PosMat,
    /// Build-side base positions (aligned with `probe`).
    pub build: PosMat,
}

/// Sentinel for an empty bucket head / chain end in [`FlatJoinMap`].
const CHAIN_END: u32 = u32::MAX;

/// Direct-address span cap: build key domains up to this wide use the
/// perfect-hash form (16 MiB of heads at the cap — transient, freed
/// with the query).
const DIRECT_JOIN_SPAN: usize = 1 << 22;

/// A flat bucket-chained join table over the contiguous build-row index
/// space. Replaces the `FxHashMap<i64, Vec<u32>>` layout, whose
/// one-heap-`Vec`-per-distinct-key builds dominated the join hot path
/// (the allocation tax of *On the Impact of Memory Allocation on
/// High-Performance Query Processing*). Partial builds merge by
/// concatenating their key slices; chains are linked once over the
/// concatenated array — no per-key re-hash, no per-key allocation.
///
/// Two layouts, chosen once at build:
///
/// - **Direct**: TPC-H join keys are small dense integers, so for
///   narrow key spans `heads` is indexed by `key - base` directly — no
///   hash, no key comparisons on the chain walk (a chain holds exactly
///   one key), at most two cache misses per probe.
/// - **Hashed**: wide-domain fallback; Fibonacci-hashed buckets over
///   interleaved `(key, next)` entries, so a chain step costs one cache
///   line, with key-equality filtering for bucket collisions.
#[derive(Debug)]
pub enum FlatJoinMap {
    /// Perfect-hash layout for narrow key spans.
    Direct {
        /// Smallest build key.
        base: i64,
        /// `heads[key - base]` → first build row with that key.
        heads: Vec<u32>,
        /// Per-row chain link (`CHAIN_END` = end); a chain links rows of
        /// one exact key, in ascending build-row order.
        next: Vec<u32>,
    },
    /// Hashed layout for wide key domains.
    Hashed {
        /// `(key, next)` per build row, interleaved so the chain walk
        /// touches one cache line per step.
        entries: Vec<(i64, u32)>,
        /// Bucket heads (`CHAIN_END` = empty), length a power of two.
        heads: Vec<u32>,
        /// Fibonacci-hash shift selecting `log2(heads.len())` top bits.
        shift: u32,
    },
}

impl Default for FlatJoinMap {
    fn default() -> Self {
        FlatJoinMap::from_keys(Vec::new())
    }
}

impl FlatJoinMap {
    /// Builds the table from partition key slices, concatenated in
    /// partition order (partition `p` over build rows `[start, end)`
    /// must contribute exactly those rows' keys, in row order).
    pub fn from_parts(parts: impl IntoIterator<Item = Vec<i64>>) -> Self {
        let mut iter = parts.into_iter();
        let mut keys = iter.next().unwrap_or_default();
        for part in iter {
            keys.reserve(part.len());
            keys.extend_from_slice(&part);
        }
        Self::from_keys(keys)
    }

    /// Builds the table from the full key vector.
    pub fn from_keys(keys: Vec<i64>) -> Self {
        let n = keys.len();
        let (lo, hi) = crate::exec::eval::key_bounds(&keys);
        let span = if n == 0 {
            0
        } else {
            (hi as i128 - lo as i128 + 1).min(usize::MAX as i128) as usize
        };
        // Direct addressing when the span stays workable: build sides
        // are typically *selective subsets* of a dense key domain, so
        // the span can exceed the row count considerably and direct
        // addressing still wins — probes are mostly misses, and a miss
        // costs one lookup in a heads array small enough to stay cache
        // resident. The proportional bound only guards the degenerate
        // huge-span/tiny-build case.
        if n > 0 && span <= DIRECT_JOIN_SPAN && span <= (64 * n).max(65536) {
            let mut heads = vec![CHAIN_END; span];
            let mut next = vec![CHAIN_END; n];
            // Rows link in reverse so chains walk in ascending global
            // build index — the emission order probe results rely on.
            for g in (0..n).rev() {
                let idx = (keys[g] - lo) as usize;
                next[g] = heads[idx];
                heads[idx] = g as u32;
            }
            FlatJoinMap::Direct {
                base: lo,
                heads,
                next,
            }
        } else {
            let n_buckets = n.next_power_of_two().max(2);
            let shift = 64 - n_buckets.trailing_zeros();
            let mut heads = vec![CHAIN_END; n_buckets];
            let mut entries: Vec<(i64, u32)> = keys.iter().map(|&k| (k, CHAIN_END)).collect();
            for g in (0..n).rev() {
                let b = Self::bucket(entries[g].0, shift);
                entries[g].1 = heads[b];
                heads[b] = g as u32;
            }
            FlatJoinMap::Hashed {
                entries,
                heads,
                shift,
            }
        }
    }

    #[inline(always)]
    fn bucket(key: i64, shift: u32) -> usize {
        // Fibonacci hashing: multiply spreads the low-entropy key bits,
        // the shift keeps the top log2(n_buckets) bits.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
    }

    /// Number of build rows.
    pub fn n_rows(&self) -> usize {
        match self {
            FlatJoinMap::Direct { next, .. } => next.len(),
            FlatJoinMap::Hashed { entries, .. } => entries.len(),
        }
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Calls `f` with every build-row index matching `key`, in ascending
    /// order.
    #[inline(always)]
    pub fn for_each_match(&self, key: i64, mut f: impl FnMut(u32)) {
        match self {
            FlatJoinMap::Direct { base, heads, next } => {
                let idx = key.wrapping_sub(*base) as u64;
                if (idx as usize) < heads.len() {
                    let mut cur = heads[idx as usize];
                    while cur != CHAIN_END {
                        f(cur);
                        cur = next[cur as usize];
                    }
                }
            }
            FlatJoinMap::Hashed {
                entries,
                heads,
                shift,
            } => {
                let mut cur = heads[Self::bucket(key, *shift)];
                while cur != CHAIN_END {
                    let (k, nx) = entries[cur as usize];
                    if k == key {
                        f(cur);
                    }
                    cur = nx;
                }
            }
        }
    }
}

/// A built hash table for joins: a flat chained index over the build
/// keys (build row indices map to base positions through `build_origin`).
#[derive(Debug)]
pub struct JoinTable {
    /// The flat key index.
    pub map: FlatJoinMap,
    /// Provenance of the build keys.
    pub build_origin: Option<PosMat>,
    /// Build table name (provenance fallback when keys came straight from
    /// a base column).
    pub build_table: &'static str,
}

impl JoinTable {
    /// Number of build rows.
    pub fn n_rows(&self) -> usize {
        self.map.n_rows()
    }
}

/// The value of a completed plan node.
#[derive(Clone, Debug)]
pub enum Mat {
    /// Selection vector.
    Pos(PosMat),
    /// Value vector.
    Val(ValMat),
    /// Join matches.
    Pairs(PairsMat),
    /// Grouped aggregates, sorted by key.
    Groups(Arc<Vec<(i64, f64)>>),
    /// A single scalar.
    Scalar(f64),
    /// A join hash table.
    Hash(Arc<JoinTable>),
}

impl Mat {
    /// Logical row count (1 for scalars; map size for hash/groups).
    pub fn len(&self) -> usize {
        match self {
            Mat::Pos(p) => p.pos.len(),
            Mat::Val(v) => v.data.len(),
            Mat::Pairs(p) => p.probe.pos.len(),
            Mat::Groups(g) => g.len(),
            Mat::Scalar(_) => 1,
            Mat::Hash(h) => h.n_rows(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scalar value (panics if not a scalar — a plan shape bug).
    pub fn as_scalar(&self) -> f64 {
        match self {
            Mat::Scalar(s) => *s,
            other => panic!("expected scalar, got {} rows", other.len()),
        }
    }

    /// The positions (panics if not positions).
    pub fn as_pos(&self) -> &PosMat {
        match self {
            Mat::Pos(p) => p,
            _ => panic!("expected positions"),
        }
    }

    /// The values (panics if not values).
    pub fn as_val(&self) -> &ValMat {
        match self {
            Mat::Val(v) => v,
            _ => panic!("expected values"),
        }
    }

    /// The pairs (panics if not pairs).
    pub fn as_pairs(&self) -> &PairsMat {
        match self {
            Mat::Pairs(p) => p,
            _ => panic!("expected pairs"),
        }
    }

    /// The groups (panics if not groups).
    pub fn as_groups(&self) -> &Arc<Vec<(i64, f64)>> {
        match self {
            Mat::Groups(g) => g,
            _ => panic!("expected groups"),
        }
    }

    /// The hash table (panics if not a hash table).
    pub fn as_hash(&self) -> &Arc<JoinTable> {
        match self {
            Mat::Hash(h) => h,
            _ => panic!("expected hash table"),
        }
    }
}

/// Simulated backing memory of a node: one region per partition task, in
/// row order. Rows map to regions by binary search on start offsets.
#[derive(Clone, Debug, Default)]
pub struct NodeStorage {
    /// `(first_row, region)` per partition, sorted by `first_row`.
    parts: Vec<(usize, Region)>,
    total_rows: usize,
    /// Bytes per row in the backing store.
    row_bytes: u64,
}

impl NodeStorage {
    /// Empty storage for rows of `row_bytes` each.
    pub fn new(row_bytes: u64) -> Self {
        NodeStorage {
            parts: Vec::new(),
            total_rows: 0,
            row_bytes,
        }
    }

    /// Appends a partition's region covering `rows` rows. Partitions must
    /// be pushed in row order (tasks complete out of order, so the engine
    /// buffers and pushes at finalize).
    pub fn push_part(&mut self, rows: usize, region: Region) {
        self.parts.push((self.total_rows, region));
        self.total_rows += rows;
    }

    /// Total rows stored.
    pub fn rows(&self) -> usize {
        self.total_rows
    }

    /// All backing regions (freed when the query retires).
    pub fn regions(&self) -> impl Iterator<Item = &Region> + '_ {
        self.parts.iter().map(|(_, r)| r)
    }

    /// Whether any region backs this storage.
    pub fn is_backed(&self) -> bool {
        !self.parts.is_empty()
    }

    /// Segments covering the row range `[start, end)` across partitions.
    pub fn segments_for_rows(&self, start: usize, end: usize) -> Vec<SegId> {
        let mut out = Vec::new();
        self.segments_for_rows_into(start, end, &mut out);
        out
    }

    /// [`Self::segments_for_rows`] appending into a caller-provided
    /// buffer (the engine reuses one scratch vector across task
    /// preparations). Deduplication is confined to the appended span, so
    /// the emitted sequence is identical to the owned-vector form.
    pub fn segments_for_rows_into(&self, start: usize, end: usize, out: &mut Vec<SegId>) {
        let from = out.len();
        if start >= end || self.parts.is_empty() {
            return;
        }
        let rows_per_seg = (numa_sim::SEG_BYTES / self.row_bytes.max(1)) as usize;
        let rows_per_seg = rows_per_seg.max(1);
        for (i, &(first, ref region)) in self.parts.iter().enumerate() {
            let part_end = self
                .parts
                .get(i + 1)
                .map_or(self.total_rows, |&(next, _)| next);
            let lo = start.max(first);
            let hi = end.min(part_end);
            if lo >= hi {
                continue;
            }
            let s0 = (lo - first) / rows_per_seg;
            let s1 = (hi - 1 - first) / rows_per_seg;
            for s in s0..=s1 {
                let s = (s as u64).min(region.n_segments().saturating_sub(1));
                out.push(region.segment(s));
            }
        }
        crate::storage::bat::dedup_from(out, from);
    }

    /// Rows per segment at this row width (used by charge loops).
    pub fn rows_per_segment(&self) -> usize {
        ((numa_sim::SEG_BYTES / self.row_bytes.max(1)) as usize).max(1)
    }
}

/// Positions-per-segment helper mirroring [`crate::storage::Bat`] for
/// 4-byte position rows.
pub const POS_BYTES: u64 = 4;

/// Value row width in bytes.
pub const VAL_BYTES: u64 = 8;

/// Rows per segment for 8-byte values (same as base BATs).
pub const VAL_ROWS_PER_SEG: usize = ROWS_PER_SEG as usize;

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sim::{Machine, SEG_BYTES};

    #[test]
    fn mat_len_and_accessors() {
        let pos = PosMat {
            table: "lineitem",
            pos: Arc::new(vec![1, 5, 9]),
        };
        assert_eq!(Mat::Pos(pos.clone()).len(), 3);
        let val = ValMat {
            data: ColData::F64(Arc::new(vec![1.0, 2.0])),
            origin: Some(pos.clone()),
        };
        assert_eq!(Mat::Val(val).len(), 2);
        assert_eq!(Mat::Scalar(4.2).as_scalar(), 4.2);
        assert!(Mat::Groups(Arc::new(vec![])).is_empty());
        let pairs = Mat::Pairs(PairsMat {
            probe: pos.clone(),
            build: pos,
        });
        assert_eq!(pairs.as_pairs().probe.pos.len(), 3);
    }

    #[test]
    #[should_panic(expected = "expected scalar")]
    fn wrong_accessor_panics() {
        Mat::Groups(Arc::new(vec![])).as_scalar();
    }

    #[test]
    fn storage_maps_rows_to_part_segments() {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let mut st = NodeStorage::new(8);
        // Two partitions: 8192 rows (1 seg) + 16384 rows (2 segs).
        let r1 = m.alloc(sp, 8192 * 8);
        let r2 = m.alloc(sp, 16384 * 8);
        st.push_part(8192, r1);
        st.push_part(16384, r2);
        assert_eq!(st.rows(), 24576);
        assert_eq!(st.rows_per_segment(), 8192);
        // Rows spanning the partition boundary touch both regions.
        let segs = st.segments_for_rows(8000, 9000);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], r1.segment(0));
        assert_eq!(segs[1], r2.segment(0));
        // Entire range: 3 segments.
        assert_eq!(st.segments_for_rows(0, 24576).len(), 3);
        // Empty and unbacked cases.
        assert!(st.segments_for_rows(5, 5).is_empty());
        assert!(NodeStorage::new(8).segments_for_rows(0, 10).is_empty());
    }

    #[test]
    fn storage_position_rows_pack_denser() {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let mut st = NodeStorage::new(POS_BYTES);
        let rows = (SEG_BYTES / POS_BYTES) as usize; // 16384 positions per seg
        let r = m.alloc(sp, rows as u64 * POS_BYTES);
        st.push_part(rows, r);
        assert_eq!(st.rows_per_segment(), rows);
        assert_eq!(st.segments_for_rows(0, rows).len(), 1);
    }
}
