//! The hand-coded "C language" Q6 baseline of §II-B.
//!
//! The paper compares MonetDB's Volcano execution of Q6 against a
//! hand-written pthreads program that scans the four columns in one fused
//! pass (Fig. 3's C code). We reproduce it as a coordinator thread per
//! client that forks a team of worker threads over contiguous slices,
//! with the paper's three affinity policies:
//!
//! - **OS** — no affinity; the scheduler places the team;
//! - **Dense** — all team threads pinned to the cores of one node
//!   (`pthread_setaffinity_np` to the same socket);
//! - **Sparse** — thread `i` pinned to node `i mod n_nodes` (spread).
//!
//! The data is loaded once into its own address space (the C program's
//! mmap of the raw column files).

use crate::storage::bat::Bat;
use crate::tpch::gen::TpchData;
use crate::tpch::queries::YEAR_DAYS;
use emca_metrics::SimDuration;
use numa_sim::{AccessKind, CoreId, Machine, SpaceId, StreamId};
use os_sim::{CoreMask, GroupId, Kernel, SimWork, StepOutcome, Tid, WorkCtx};
use std::cell::RefCell;
use std::rc::Rc;

/// Affinity policy of the hand-coded program (Fig. 4 legend).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CAffinity {
    /// Leave placement to the OS (`OS/C`).
    Os,
    /// All threads on one node (`Dense/C`).
    Dense,
    /// One thread per node round-robin (`Sparse/C`).
    Sparse,
}

/// The four Q6 columns bound to simulated memory (the program's own
/// address space).
pub struct HandcodedData {
    /// Backing space.
    pub space: SpaceId,
    quantity: Bat,
    extendedprice: Bat,
    discount: Bat,
    shipdate: Bat,
    rows: usize,
}

impl HandcodedData {
    /// Loads the four columns and first-touches them from `loader_core`
    /// (one sequential loader, like reading the raw files).
    pub fn load(machine: &mut Machine, data: &TpchData, loader_core: CoreId) -> Self {
        let space = machine.create_space();
        let mut mk = |name: &'static str| {
            let bat = Bat::new(machine, space, name, data.column("lineitem", name).clone());
            for seg in bat.region.segments() {
                machine.access_segment(loader_core, seg, AccessKind::Write, StreamId(0));
            }
            bat
        };
        let quantity = mk("l_quantity");
        let extendedprice = mk("l_extendedprice");
        let discount = mk("l_discount");
        let shipdate = mk("l_shipdate");
        let rows = quantity.len();
        HandcodedData {
            space,
            quantity,
            extendedprice,
            discount,
            shipdate,
            rows,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// Result sink shared between a team and its coordinator.
struct TeamState {
    remaining: usize,
    sum: f64,
    coordinator: Tid,
}

/// One team worker: fused scan of its slice.
struct TeamWorker {
    data: Rc<HandcodedData>,
    state: Rc<RefCell<TeamState>>,
    start: usize,
    end: usize,
    cursor: usize,
    acc: f64,
    stream: StreamId,
}

/// Cycles per row of the fused Q6 loop (predicates + multiply-add).
const FUSED_CYCLES_PER_ROW: u64 = 4;

impl SimWork for TeamWorker {
    fn step(&mut self, ctx: &mut WorkCtx<'_>) -> StepOutcome {
        let mut used = SimDuration::ZERO;
        let rows_per_seg = crate::storage::bat::ROWS_PER_SEG as usize;
        let d0 = 5.0 * YEAR_DAYS;
        let d1 = d0 + YEAR_DAYS;
        while self.cursor < self.end {
            if used >= ctx.budget {
                return StepOutcome::Ran(used);
            }
            let chunk_end = ((self.cursor / rows_per_seg + 1) * rows_per_seg).min(self.end);
            // Stream all four columns for this chunk.
            for bat in [
                &self.data.quantity,
                &self.data.extendedprice,
                &self.data.discount,
                &self.data.shipdate,
            ] {
                for seg in bat.segments_for_rows(self.cursor, chunk_end) {
                    used += ctx
                        .machine
                        .access_segment(ctx.core, seg, AccessKind::Read, self.stream)
                        .time;
                }
            }
            // Fused evaluation (the real C loop of Fig. 3).
            let qty = self.data.quantity.data.as_f64();
            let price = self.data.extendedprice.data.as_f64();
            let disc = self.data.discount.data.as_f64();
            let ship = self.data.shipdate.data.as_i64();
            for i in self.cursor..chunk_end {
                let s = ship[i] as f64;
                if s >= d0 && s < d1 && disc[i] >= 0.06 && disc[i] <= 0.08 && qty[i] < 24.0 {
                    self.acc += price[i] * disc[i];
                }
            }
            used += ctx
                .machine
                .compute((chunk_end - self.cursor) as u64 * FUSED_CYCLES_PER_ROW);
            self.cursor = chunk_end;
        }
        // Slice done: merge and signal the coordinator if last.
        let mut st = self.state.borrow_mut();
        st.sum += self.acc;
        st.remaining -= 1;
        if st.remaining == 0 {
            ctx.wake(st.coordinator);
        }
        StepOutcome::Finished(used)
    }

    fn label(&self) -> &str {
        "q6-pthread"
    }
}

/// Per-client record of the hand-coded runs.
#[derive(Clone, Debug, Default)]
pub struct HandcodedLog {
    /// `(response time, revenue)` per completed run.
    pub runs: Vec<(SimDuration, f64)>,
}

/// Shared log handle.
pub type SharedHandcodedLog = Rc<RefCell<HandcodedLog>>;

/// The coordinator: forks a team per run, joins it, repeats.
pub struct HandcodedClient {
    data: Rc<HandcodedData>,
    affinity: CAffinity,
    team_size: usize,
    group: GroupId,
    iterations: u32,
    state: Option<Rc<RefCell<TeamState>>>,
    started: Option<emca_metrics::SimTime>,
    log: SharedHandcodedLog,
    stream_base: u64,
    run: u32,
    spawner: Spawner,
}

impl HandcodedClient {
    /// Creates a coordinator body. `stream_base` must be unique per
    /// client (traffic attribution).
    pub fn new(
        data: Rc<HandcodedData>,
        affinity: CAffinity,
        team_size: usize,
        group: GroupId,
        iterations: u32,
        stream_base: u64,
        spawner: Spawner,
    ) -> (Self, SharedHandcodedLog) {
        assert!(team_size >= 1, "team needs at least one thread");
        let log: SharedHandcodedLog = Rc::new(RefCell::new(HandcodedLog::default()));
        (
            HandcodedClient {
                data,
                affinity,
                team_size,
                group,
                iterations,
                state: None,
                started: None,
                log: Rc::clone(&log),
                stream_base,
                run: 0,
                spawner,
            },
            log,
        )
    }

    fn team_affinity(&self, thread_idx: usize, topo: &numa_sim::Topology) -> Option<CoreMask> {
        match self.affinity {
            CAffinity::Os => None,
            CAffinity::Dense => {
                // All team threads on node 0 (where the data lives).
                Some(CoreMask::from_cores(topo.cores_of(numa_sim::NodeId(0))))
            }
            CAffinity::Sparse => {
                let node = numa_sim::NodeId((thread_idx % topo.n_nodes()) as u16);
                Some(CoreMask::from_cores(topo.cores_of(node)))
            }
        }
    }
}

impl SimWork for HandcodedClient {
    fn step(&mut self, ctx: &mut WorkCtx<'_>) -> StepOutcome {
        // Join a finished team.
        if let Some(state) = &self.state {
            if state.borrow().remaining > 0 {
                return StepOutcome::Blocked(SimDuration::ZERO);
            }
            let sum = state.borrow().sum;
            let started = self.started.take().expect("run had a start time");
            self.log
                .borrow_mut()
                .runs
                .push((ctx.now.since(started), sum));
            self.state = None;
        }
        if self.run >= self.iterations {
            return StepOutcome::Finished(SimDuration::ZERO);
        }
        // Fork the next team. Spawn requests go through the context's
        // wake list indirection: the kernel exposes request_spawn outside
        // of steps, so the coordinator instead pre-creates workers via the
        // shared spawner installed at setup.
        self.run += 1;
        self.started = Some(ctx.now);
        let state = Rc::new(RefCell::new(TeamState {
            remaining: self.team_size,
            sum: 0.0,
            coordinator: ctx.tid,
        }));
        self.state = Some(Rc::clone(&state));
        let rows = self.data.rows();
        let topo = ctx.machine.topology().clone();
        let stream = StreamId(self.stream_base + self.run as u64);
        for t in 0..self.team_size {
            let start = rows * t / self.team_size;
            let end = rows * (t + 1) / self.team_size;
            let worker = TeamWorker {
                data: Rc::clone(&self.data),
                state: Rc::clone(&state),
                start,
                end,
                cursor: start,
                acc: 0.0,
                stream,
            };
            let _ = worker.start;
            self.spawner.borrow_mut().push(os_sim::SpawnReq {
                name: format!("pthread{t}"),
                group: self.group,
                affinity: self.team_affinity(t, &topo),
                work: Box::new(worker),
            });
        }
        StepOutcome::Blocked(self.spawn_overhead())
    }

    fn label(&self) -> &str {
        "q6-coordinator"
    }
}

impl HandcodedClient {
    /// Thread-creation cost charged per run (`pthread_create` etc.).
    fn spawn_overhead(&self) -> SimDuration {
        SimDuration::from_micros(20 * self.team_size as u64)
    }
}

/// A shared buffer of spawn requests drained by the driver between ticks.
pub type Spawner = Rc<RefCell<Vec<os_sim::SpawnReq>>>;

/// Drains pending team spawns into the kernel. Call between ticks.
pub fn pump_spawns(kernel: &mut Kernel, spawner: &Spawner) {
    let reqs: Vec<os_sim::SpawnReq> = spawner.borrow_mut().drain(..).collect();
    for req in reqs {
        kernel.request_spawn(req);
    }
}
