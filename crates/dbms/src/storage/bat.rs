//! BATs — the MonetDB-style column vectors.
//!
//! A [`Bat`] couples real in-memory data (used for genuine operator
//! evaluation, so selectivities and join cardinalities are authentic)
//! with a simulated memory [`Region`] (used to charge NUMA traffic for
//! every access). All values are 8 bytes wide (`i64` or `f64`); strings
//! are dictionary-encoded to `i64` at generation time, exactly as a
//! column store would.

use numa_sim::{Machine, Region, SegId, SpaceId, SEG_BYTES};
use std::sync::Arc;

/// Width of every column value, in bytes.
pub const VALUE_BYTES: u64 = 8;

/// Rows per 64 KiB segment.
pub const ROWS_PER_SEG: u64 = SEG_BYTES / VALUE_BYTES;

/// Column data type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integers (keys, dates-as-days, dictionary codes).
    I64,
    /// 64-bit floats (prices, discounts, quantities).
    F64,
}

/// The actual values of a column. `Arc` so intermediates and memo-cached
/// results share storage without copies.
#[derive(Clone, Debug)]
pub enum ColData {
    /// Integer payload.
    I64(Arc<Vec<i64>>),
    /// Float payload.
    F64(Arc<Vec<f64>>),
}

impl ColData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColData::I64(v) => v.len(),
            ColData::F64(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The type tag.
    pub fn col_type(&self) -> ColType {
        match self {
            ColData::I64(_) => ColType::I64,
            ColData::F64(_) => ColType::F64,
        }
    }

    /// Integer view (panics on type mismatch — a plan construction bug).
    pub fn as_i64(&self) -> &[i64] {
        match self {
            ColData::I64(v) => v,
            ColData::F64(_) => panic!("expected i64 column"),
        }
    }

    /// Float view (panics on type mismatch).
    pub fn as_f64(&self) -> &[f64] {
        match self {
            ColData::F64(v) => v,
            ColData::I64(_) => panic!("expected f64 column"),
        }
    }

    /// Row value as f64 regardless of storage type (for arithmetic ops).
    #[inline]
    pub fn value_f64(&self, row: usize) -> f64 {
        match self {
            ColData::I64(v) => v[row] as f64,
            ColData::F64(v) => v[row],
        }
    }

    /// Row value as i64 regardless of storage type (for key ops).
    #[inline]
    pub fn value_i64(&self, row: usize) -> i64 {
        match self {
            ColData::I64(v) => v[row],
            ColData::F64(v) => v[row] as i64,
        }
    }
}

/// A column vector bound to simulated memory.
#[derive(Clone, Debug)]
pub struct Bat {
    /// Column name (diagnostics / Tomograph).
    pub name: String,
    /// The values.
    pub data: ColData,
    /// Simulated backing region.
    pub region: Region,
}

impl Bat {
    /// Allocates the simulated region for `data` in `space` and wraps it.
    /// The region is *not* touched: pages are homed when first accessed,
    /// like mmap'd BAT files in MonetDB.
    pub fn new(
        machine: &mut Machine,
        space: SpaceId,
        name: impl Into<String>,
        data: ColData,
    ) -> Self {
        let bytes = (data.len() as u64 * VALUE_BYTES).max(1);
        let region = machine.alloc(space, bytes);
        Bat {
            name: name.into(),
            data,
            region,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The segment holding `row`.
    pub fn segment_of_row(&self, row: usize) -> SegId {
        let seg_idx = row as u64 / ROWS_PER_SEG;
        debug_assert!(seg_idx < self.region.n_segments());
        self.region.segment(seg_idx)
    }

    /// Segments covering the row range `[start, end)`, in order.
    pub fn segments_for_rows(&self, start: usize, end: usize) -> Vec<SegId> {
        let mut segs = Vec::new();
        self.segments_for_rows_into(start, end, &mut segs);
        segs
    }

    /// [`Self::segments_for_rows`] appending into a caller-provided
    /// buffer (the engine's task preparation reuses one scratch vector
    /// instead of allocating per input).
    pub fn segments_for_rows_into(&self, start: usize, end: usize, out: &mut Vec<SegId>) {
        if start >= end {
            return;
        }
        let first = start as u64 / ROWS_PER_SEG;
        let last = (end as u64 - 1) / ROWS_PER_SEG;
        out.reserve((last - first + 1) as usize);
        out.extend((first..=last).map(|i| self.region.segment(i)));
    }

    /// Distinct segments touched by a sorted position list (sparse access
    /// pattern of `algebra.projection` over a candidate list).
    pub fn segments_for_positions(&self, positions: &[u32]) -> Vec<SegId> {
        let mut segs = Vec::new();
        self.segments_for_positions_into(positions, &mut segs);
        segs
    }

    /// [`Self::segments_for_positions`] appending into a caller-provided
    /// buffer. Requires a **sorted** position list (all selection-vector
    /// producers emit ascending positions; join-pair consumers use the
    /// `_unsorted` variant): the walk gallops from one segment boundary
    /// to the next instead of testing every position, so cost scales
    /// with segments touched, not list length.
    pub fn segments_for_positions_into(&self, positions: &[u32], out: &mut Vec<SegId>) {
        debug_assert!(positions.windows(2).all(|w| w[0] <= w[1]));
        let mut last: Option<u64> = None;
        let mut i = 0usize;
        while i < positions.len() {
            let s = positions[i] as u64 / ROWS_PER_SEG;
            if last != Some(s) {
                out.push(self.region.segment(s));
                last = Some(s);
            }
            // Gallop past the run of positions in segment `s`.
            let in_seg = |p: u32| p as u64 / ROWS_PER_SEG == s;
            let mut step = 1usize;
            while i + step < positions.len() && in_seg(positions[i + step]) {
                i += step;
                step *= 2;
            }
            while step > 0 {
                if i + step < positions.len() && in_seg(positions[i + step]) {
                    i += step;
                }
                step /= 2;
            }
            i += 1;
        }
    }

    /// Distinct segments touched by an *unsorted* position list. Uses a
    /// per-segment bitmap instead of sorting the positions — the sort
    /// dominated the task-preparation hot path for join projections.
    pub fn segments_for_positions_unsorted(&self, positions: &[u32]) -> Vec<SegId> {
        let mut segs = Vec::new();
        self.segments_for_positions_unsorted_into(positions, &mut segs);
        segs
    }

    /// [`Self::segments_for_positions_unsorted`] appending into a
    /// caller-provided buffer.
    pub fn segments_for_positions_unsorted_into(&self, positions: &[u32], out: &mut Vec<SegId>) {
        let n_segs = self.region.n_segments() as usize;
        let mut bits = vec![0u64; n_segs.div_ceil(64)];
        for &p in positions {
            let s = (p as u64 / ROWS_PER_SEG) as usize;
            debug_assert!(s < n_segs);
            bits[s / 64] |= 1u64 << (s % 64);
        }
        for (w, &word) in bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let b = word.trailing_zeros() as usize;
                out.push(self.region.segment((w * 64 + b) as u64));
                word &= word - 1;
            }
        }
    }
}

/// Removes *consecutive* duplicates from `v[from..]`, leaving `v[..from]`
/// untouched — `Vec::dedup` confined to an appended span, used by the
/// `*_into` segment gatherers so a shared scratch buffer produces exactly
/// the sequence the owned-vector forms did.
pub fn dedup_from<T: PartialEq>(v: &mut Vec<T>, from: usize) {
    if v.len() - from < 2 {
        return;
    }
    let mut write = from + 1;
    for read in (from + 1)..v.len() {
        if v[read] != v[write - 1] {
            v.swap(write, read);
            write += 1;
        }
    }
    v.truncate(write);
}

/// Identifier of a BAT inside a [`BatStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BatId(pub u32);

/// The engine's BAT registry (base columns plus live intermediates).
#[derive(Default)]
pub struct BatStore {
    bats: Vec<Option<Bat>>,
}

impl BatStore {
    /// An empty store.
    pub fn new() -> Self {
        BatStore::default()
    }

    /// Registers a BAT.
    pub fn insert(&mut self, bat: Bat) -> BatId {
        self.bats.push(Some(bat));
        BatId(self.bats.len() as u32 - 1)
    }

    /// Fetches a BAT (panics on dangling id — a plan lifetime bug).
    pub fn get(&self, id: BatId) -> &Bat {
        self.bats[id.0 as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("BAT {id:?} already dropped"))
    }

    /// Whether the id is still live.
    pub fn contains(&self, id: BatId) -> bool {
        self.bats
            .get(id.0 as usize)
            .is_some_and(|slot| slot.is_some())
    }

    /// Drops a BAT, returning its region for the caller to free on the
    /// machine.
    pub fn remove(&mut self, id: BatId) -> Option<Region> {
        self.bats
            .get_mut(id.0 as usize)
            .and_then(|slot| slot.take())
            .map(|bat| bat.region)
    }

    /// Number of live BATs.
    pub fn n_live(&self) -> usize {
        self.bats.iter().filter(|b| b.is_some()).count()
    }

    /// Iterates over live BATs.
    pub fn iter(&self) -> impl Iterator<Item = &Bat> {
        self.bats.iter().filter_map(|b| b.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sim::PAGES_PER_SEG;

    fn machine() -> Machine {
        Machine::opteron_4x4()
    }

    fn i64s(n: usize) -> ColData {
        ColData::I64(Arc::new((0..n as i64).collect()))
    }

    #[test]
    fn bat_region_sized_to_rows() {
        let mut m = machine();
        let sp = m.create_space();
        // 8192 rows of 8 bytes = exactly one segment.
        let b = Bat::new(&mut m, sp, "x", i64s(8192));
        assert_eq!(b.region.n_segments(), 1);
        let b2 = Bat::new(&mut m, sp, "y", i64s(8193));
        assert_eq!(b2.region.n_segments(), 2);
        assert_eq!(b2.region.n_pages, 2 * PAGES_PER_SEG);
    }

    #[test]
    fn segment_row_mapping() {
        let mut m = machine();
        let sp = m.create_space();
        let b = Bat::new(&mut m, sp, "x", i64s(20_000));
        assert_eq!(b.segment_of_row(0), b.region.segment(0));
        assert_eq!(b.segment_of_row(8191), b.region.segment(0));
        assert_eq!(b.segment_of_row(8192), b.region.segment(1));
        let segs = b.segments_for_rows(8000, 9000);
        assert_eq!(segs.len(), 2);
        assert!(b.segments_for_rows(5, 5).is_empty());
    }

    #[test]
    fn positions_dedupe_segments() {
        let mut m = machine();
        let sp = m.create_space();
        let b = Bat::new(&mut m, sp, "x", i64s(30_000));
        let segs = b.segments_for_positions(&[1, 2, 3, 8192, 8193, 20_000]);
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn coldata_accessors() {
        let c = ColData::F64(Arc::new(vec![1.5, 2.5]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.col_type(), ColType::F64);
        assert_eq!(c.value_f64(1), 2.5);
        assert_eq!(c.value_i64(1), 2);
        let k = ColData::I64(Arc::new(vec![7]));
        assert_eq!(k.value_f64(0), 7.0);
        assert_eq!(k.as_i64(), &[7]);
    }

    #[test]
    #[should_panic(expected = "expected i64")]
    fn type_mismatch_panics() {
        let c = ColData::F64(Arc::new(vec![1.0]));
        let _ = c.as_i64();
    }

    #[test]
    fn store_lifecycle() {
        let mut m = machine();
        let sp = m.create_space();
        let mut store = BatStore::new();
        let id = store.insert(Bat::new(&mut m, sp, "x", i64s(10)));
        assert!(store.contains(id));
        assert_eq!(store.get(id).name, "x");
        assert_eq!(store.n_live(), 1);
        let region = store.remove(id).expect("live bat");
        m.free(&region);
        assert!(!store.contains(id));
        assert_eq!(store.remove(id), None);
    }
}
