//! Columnar storage: BATs (Binary Association Tables) and the catalog.

pub mod bat;
pub mod catalog;

pub use bat::{Bat, BatId, BatStore, ColData, ColType, ROWS_PER_SEG, VALUE_BYTES};
pub use catalog::{tpch_schema, Catalog, ColumnDef, TableDef};
