//! The catalog: named tables of named columns, and the TPC-H schema.

use crate::storage::bat::{BatId, BatStore, ColType};
use emca_metrics::FxHashMap;

/// A column declaration.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Column name (e.g. `l_quantity`).
    pub name: &'static str,
    /// Storage type.
    pub col_type: ColType,
}

/// A table declaration.
#[derive(Clone, Debug)]
pub struct TableDef {
    /// Table name (e.g. `lineitem`).
    pub name: &'static str,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

/// Maps `table.column` names to live BATs.
#[derive(Default)]
pub struct Catalog {
    tables: FxHashMap<&'static str, FxHashMap<&'static str, BatId>>,
    row_counts: FxHashMap<&'static str, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a column BAT under `table.column`.
    pub fn register(
        &mut self,
        table: &'static str,
        column: &'static str,
        id: BatId,
        store: &BatStore,
    ) {
        let rows = store.get(id).len();
        let prev = self.row_counts.insert(table, rows);
        if let Some(p) = prev {
            assert_eq!(p, rows, "ragged table {table}: {p} vs {rows} rows");
        }
        self.tables.entry(table).or_default().insert(column, id);
    }

    /// Resolves `table.column` (panics on unknown names — plan bugs).
    pub fn column(&self, table: &str, column: &str) -> BatId {
        *self
            .tables
            .get(table)
            .unwrap_or_else(|| panic!("unknown table {table}"))
            .get(column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"))
    }

    /// Row count of a table.
    pub fn rows(&self, table: &str) -> usize {
        *self
            .row_counts
            .get(table)
            .unwrap_or_else(|| panic!("unknown table {table}"))
    }

    /// Whether a table exists.
    pub fn has_table(&self, table: &str) -> bool {
        self.tables.contains_key(table)
    }

    /// Table names, sorted (deterministic iteration).
    pub fn table_names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.tables.keys().copied().collect();
        names.sort_unstable();
        names
    }
}

/// The TPC-H-style schema used by the 22 query plans. Strings are
/// dictionary codes (`I64`); dates are days since 1992-01-01 (`I64`).
pub fn tpch_schema() -> Vec<TableDef> {
    use ColType::{F64, I64};
    let col = |name, col_type| ColumnDef { name, col_type };
    vec![
        TableDef {
            name: "lineitem",
            columns: vec![
                col("l_orderkey", I64),
                col("l_partkey", I64),
                col("l_suppkey", I64),
                col("l_quantity", F64),
                col("l_extendedprice", F64),
                col("l_discount", F64),
                col("l_tax", F64),
                col("l_shipdate", I64),
                col("l_commitdate", I64),
                col("l_receiptdate", I64),
                col("l_returnflag", I64),
                col("l_linestatus", I64),
                col("l_shipmode", I64),
            ],
        },
        TableDef {
            name: "orders",
            columns: vec![
                col("o_orderkey", I64),
                col("o_custkey", I64),
                col("o_orderdate", I64),
                col("o_totalprice", F64),
                col("o_orderpriority", I64),
                col("o_orderstatus", I64),
            ],
        },
        TableDef {
            name: "customer",
            columns: vec![
                col("c_custkey", I64),
                col("c_nationkey", I64),
                col("c_acctbal", F64),
                col("c_mktsegment", I64),
                col("c_phone_cc", I64),
            ],
        },
        TableDef {
            name: "part",
            columns: vec![
                col("p_partkey", I64),
                col("p_size", I64),
                col("p_brand", I64),
                col("p_container", I64),
                col("p_type", I64),
            ],
        },
        TableDef {
            name: "supplier",
            columns: vec![
                col("s_suppkey", I64),
                col("s_nationkey", I64),
                col("s_acctbal", F64),
            ],
        },
        TableDef {
            name: "partsupp",
            columns: vec![
                col("ps_partkey", I64),
                col("ps_suppkey", I64),
                col("ps_supplycost", F64),
                col("ps_availqty", I64),
            ],
        },
        TableDef {
            name: "nation",
            columns: vec![col("n_nationkey", I64), col("n_regionkey", I64)],
        },
        TableDef {
            name: "region",
            columns: vec![col("r_regionkey", I64)],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::bat::{Bat, ColData};
    use numa_sim::Machine;
    use std::sync::Arc;

    #[test]
    fn schema_has_all_tables() {
        let s = tpch_schema();
        let names: Vec<_> = s.iter().map(|t| t.name).collect();
        for t in [
            "lineitem", "orders", "customer", "part", "supplier", "partsupp", "nation", "region",
        ] {
            assert!(names.contains(&t), "missing {t}");
        }
        let li = s.iter().find(|t| t.name == "lineitem").unwrap();
        assert!(li.columns.iter().any(|c| c.name == "l_quantity"));
        assert_eq!(
            li.columns
                .iter()
                .find(|c| c.name == "l_quantity")
                .unwrap()
                .col_type,
            ColType::F64
        );
    }

    #[test]
    fn register_and_resolve() {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let mut store = BatStore::new();
        let mut cat = Catalog::new();
        let id = store.insert(Bat::new(
            &mut m,
            sp,
            "l_quantity",
            ColData::F64(Arc::new(vec![1.0, 2.0])),
        ));
        cat.register("lineitem", "l_quantity", id, &store);
        assert_eq!(cat.column("lineitem", "l_quantity"), id);
        assert_eq!(cat.rows("lineitem"), 2);
        assert!(cat.has_table("lineitem"));
        assert!(!cat.has_table("orders"));
        assert_eq!(cat.table_names(), vec!["lineitem"]);
    }

    #[test]
    #[should_panic(expected = "ragged table")]
    fn ragged_registration_panics() {
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let mut store = BatStore::new();
        let mut cat = Catalog::new();
        let a = store.insert(Bat::new(&mut m, sp, "a", ColData::I64(Arc::new(vec![1]))));
        let b = store.insert(Bat::new(
            &mut m,
            sp,
            "b",
            ColData::I64(Arc::new(vec![1, 2])),
        ));
        cat.register("t", "a", a, &store);
        cat.register("t", "b", b, &store);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn unknown_column_panics() {
        let cat = Catalog::new();
        let mut cat2 = cat;
        let mut m = Machine::opteron_4x4();
        let sp = m.create_space();
        let mut store = BatStore::new();
        let id = store.insert(Bat::new(&mut m, sp, "a", ColData::I64(Arc::new(vec![1]))));
        cat2.register("t", "a", id, &store);
        let _ = cat2.column("t", "zzz");
    }
}
