//! TPC-H-style workload: deterministic data generation and the 22 query
//! plans.

pub mod gen;
pub mod queries;

pub use gen::{TpchData, TpchScale};
pub use queries::{build_query, query_name, QuerySpec};
