//! The 22 TPC-H query plans (simplified but structurally faithful).
//!
//! Each plan reproduces the *shape* that matters for the paper's
//! experiments: which tables are scanned, how selective the predicates
//! are, how many joins run (Q8/Q9 are join-heavy, as §V-C2 highlights),
//! where IN-list predicates appear (Q19/Q22), and how much intermediate
//! data is materialised. SQL-surface details that do not affect data
//! movement (string LIKE internals, EXISTS rewrites, HAVING post-filters)
//! are approximated; every approximation keeps the documented TPC-H
//! selectivity of the affected operator.
//!
//! Dates are days since 1992-01-01 (`YEAR_DAYS` ≈ 365): the constants
//! below pick the same year windows the official parameters use.

use crate::exec::plan::{col, AggKind, ArithOp, CmpOp, NodeId, PhysOp, Plan, ScalarPred, Side};

/// Days per year in the generated calendar.
pub const YEAR_DAYS: f64 = 365.25;

/// A query request: either one of the 22 TPC-H queries (with a parameter
/// variant for the mixed workload) or the paper's microbenchmarks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuerySpec {
    /// TPC-H query `1..=22`, parameter `variant` shifts date windows so
    /// concurrent clients do not all share one memo entry.
    Tpch {
        /// Query number, 1..=22.
        number: u8,
        /// Parameter variant (small shift of predicate windows).
        variant: u8,
    },
    /// The paper's Q6 microbenchmark (Fig. 3/4): full plan.
    Q6 {
        /// Parameter variant.
        variant: u8,
    },
    /// The thetasubselect microbenchmark of §V-A: a single
    /// `l_quantity < threshold` scan at a chosen selectivity (percent).
    ThetaSubselect {
        /// Target selectivity in percent (quantities are uniform
        /// 1..=50, so the threshold is `sel_pct / 2` quantities).
        sel_pct: u8,
    },
    /// A zero-selectivity scan over every base column: touches (and
    /// therefore homes) all base pages without materialising anything.
    /// Used as the warm-up pass that establishes data placement before
    /// measurements, like running against a warm server.
    WarmupScan,
}

impl QuerySpec {
    /// A tag for per-query aggregation (1..=22 for TPC-H, 106 for Q6,
    /// 200+sel for the microbench).
    pub fn tag(&self) -> u32 {
        match self {
            QuerySpec::Tpch { number, .. } => *number as u32,
            QuerySpec::Q6 { .. } => 106,
            QuerySpec::ThetaSubselect { sel_pct } => 200 + *sel_pct as u32,
            QuerySpec::WarmupScan => 999,
        }
    }
}

/// Human-readable query name.
pub fn query_name(spec: &QuerySpec) -> String {
    match spec {
        QuerySpec::Tpch { number, .. } => format!("Q{number}"),
        QuerySpec::Q6 { .. } => "Q6-micro".to_string(),
        QuerySpec::ThetaSubselect { sel_pct } => format!("theta{sel_pct}"),
        QuerySpec::WarmupScan => "warmup".to_string(),
    }
}

/// Builds the physical plan for a spec.
pub fn build_query(spec: &QuerySpec) -> Plan {
    match spec {
        QuerySpec::Tpch { number, variant } => build_tpch(*number, *variant),
        QuerySpec::Q6 { variant } => q06(*variant),
        QuerySpec::ThetaSubselect { sel_pct } => theta_subselect(*sel_pct),
        QuerySpec::WarmupScan => warmup_scan(),
    }
}

/// The warm-up plan: one zero-output scan per base column, ending in a
/// sum over an empty projection so the plan has a scalar root.
pub fn warmup_scan() -> Plan {
    use crate::storage::catalog::tpch_schema;
    let mut p = Plan::new("warmup");
    let mut last = None;
    for table in tpch_schema() {
        for c in &table.columns {
            last = Some(p.add(PhysOp::ScanSelect {
                col: col(table.name, c.name),
                // Nothing qualifies: all input read, no output written.
                pred: ScalarPred::Cmp(CmpOp::Lt, -1e300),
            }));
        }
    }
    let positions = last.expect("schema has columns");
    let vals = p.add(PhysOp::Project {
        positions,
        col: col("region", "r_regionkey"),
    });
    p.add(PhysOp::AggrSum { values: vals });
    p
}

/// The paper's §V-A microbenchmark: one thetasubselect over l_quantity.
/// `sel_pct` of 45 reproduces the paper's `l_quantity < 24` (45 %).
pub fn theta_subselect(sel_pct: u8) -> Plan {
    let sel = (sel_pct as f64).clamp(1.0, 100.0);
    // Quantities are uniform over {1..50}: P(q < t) = (t-1)/50.
    let threshold = (sel / 100.0 * 50.0 + 1.0).round();
    let mut p = Plan::new(format!("theta{sel_pct}"));
    p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Cmp(CmpOp::Lt, threshold),
    });
    p
}

/// Shifts a date window by the parameter variant (keeps selectivity,
/// changes the memo fingerprint — concurrent mixed clients use different
/// parameters like the TPC-H stream rules).
fn shift(day: f64, variant: u8) -> f64 {
    day + (variant % 16) as f64 * 7.0
}

/// TPC-H Q6, following the paper's Fig. 3 plan operator for operator.
fn q06(variant: u8) -> Plan {
    let mut p = Plan::new("Q6");
    let d0 = shift(5.0 * YEAR_DAYS, variant); // 1997-01-01
    let x1 = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Cmp(CmpOp::Lt, 24.0),
    });
    let x2 = p.add(PhysOp::SelectAnd {
        candidates: x1,
        col: col("lineitem", "l_shipdate"),
        pred: ScalarPred::Between(d0, d0 + YEAR_DAYS),
    });
    let x3 = p.add(PhysOp::SelectAnd {
        candidates: x2,
        col: col("lineitem", "l_discount"),
        pred: ScalarPred::Between(0.06, 0.08),
    });
    let x4 = p.add(PhysOp::Project {
        positions: x3,
        col: col("lineitem", "l_extendedprice"),
    });
    let x5 = p.add(PhysOp::Project {
        positions: x3,
        col: col("lineitem", "l_discount"),
    });
    let x6 = p.add(PhysOp::BinOp {
        left: x4,
        right: x5,
        op: ArithOp::Mul,
    });
    p.add(PhysOp::AggrSum { values: x6 });
    p
}

/// Convenience: selection on a table column followed by a key projection
/// (the common build-side preparation).
fn select_project_key(
    p: &mut Plan,
    table: &'static str,
    sel_col: &'static str,
    pred: ScalarPred,
    key_col: &'static str,
) -> NodeId {
    let s = p.add(PhysOp::ScanSelect {
        col: col(table, sel_col),
        pred,
    });
    p.add(PhysOp::Project {
        positions: s,
        col: col(table, key_col),
    })
}

/// Builds `build keys -> hash -> probe` and returns the pairs node.
fn hash_join(p: &mut Plan, build_keys: NodeId, probe_keys: NodeId) -> NodeId {
    let h = p.add(PhysOp::JoinBuild { keys: build_keys });
    p.add(PhysOp::JoinProbe {
        build: h,
        probe: probe_keys,
    })
}

/// Probe-side revenue (`extendedprice * (1 - discount)`) through join
/// pairs on lineitem.
fn pairs_revenue(p: &mut Plan, pairs: NodeId) -> NodeId {
    let price = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_extendedprice"),
    });
    let disc = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_discount"),
    });
    p.add(PhysOp::BinOp {
        left: price,
        right: disc,
        op: ArithOp::MulOneMinus,
    })
}

fn build_tpch(number: u8, variant: u8) -> Plan {
    match number {
        1 => q01(variant),
        2 => q02(variant),
        3 => q03(variant),
        4 => q04(variant),
        5 => q05(variant),
        6 => q06(variant),
        7 => q07(variant),
        8 => q08(variant),
        9 => q09(variant),
        10 => q10(variant),
        11 => q11(variant),
        12 => q12(variant),
        13 => q13(variant),
        14 => q14(variant),
        15 => q15(variant),
        16 => q16(variant),
        17 => q17(variant),
        18 => q18(variant),
        19 => q19(variant),
        20 => q20(variant),
        21 => q21(variant),
        22 => q22(variant),
        n => panic!("TPC-H query number out of range: {n}"),
    }
}

/// Q1: pricing summary — one ~97 % scan, heavy aggregation.
fn q01(variant: u8) -> Plan {
    let mut p = Plan::new("Q1");
    let cutoff = shift(6.0 * YEAR_DAYS + 90.0, variant);
    let s = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_shipdate"),
        pred: ScalarPred::Cmp(CmpOp::Le, cutoff),
    });
    let flag = p.add(PhysOp::Project {
        positions: s,
        col: col("lineitem", "l_returnflag"),
    });
    let price = p.add(PhysOp::Project {
        positions: s,
        col: col("lineitem", "l_extendedprice"),
    });
    let disc = p.add(PhysOp::Project {
        positions: s,
        col: col("lineitem", "l_discount"),
    });
    let rev = p.add(PhysOp::BinOp {
        left: price,
        right: disc,
        op: ArithOp::MulOneMinus,
    });
    p.add(PhysOp::GroupAgg {
        keys: flag,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    p
}

/// Q2: minimum-cost supplier — part selection joined to partsupp and
/// supplier, top 100.
fn q02(variant: u8) -> Plan {
    let mut p = Plan::new("Q2");
    let size = 1.0 + (variant % 16) as f64 * 3.0;
    let parts = select_project_key(
        &mut p,
        "part",
        "p_size",
        ScalarPred::Cmp(CmpOp::Eq, size),
        "p_partkey",
    );
    let ps_keys = select_project_key(
        &mut p,
        "partsupp",
        "ps_availqty",
        ScalarPred::Cmp(CmpOp::Gt, 0.0),
        "ps_partkey",
    );
    let pairs = hash_join(&mut p, parts, ps_keys);
    let supp = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_suppkey"),
    });
    let cost = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_supplycost"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: supp,
        values: Some(cost),
        agg: AggKind::Sum,
    });
    p.add(PhysOp::TopN { input: g, n: 100 });
    p
}

/// Q3: shipping priority — customer segment ⋈ orders(date) ⋈ lineitem,
/// top 10 by revenue.
fn q03(variant: u8) -> Plan {
    let mut p = Plan::new("Q3");
    let seg = (variant % 5) as f64;
    let cutoff = shift(3.2 * YEAR_DAYS, variant);
    let cust = select_project_key(
        &mut p,
        "customer",
        "c_mktsegment",
        ScalarPred::Cmp(CmpOp::Eq, seg),
        "c_custkey",
    );
    let ord_sel = p.add(PhysOp::ScanSelect {
        col: col("orders", "o_orderdate"),
        pred: ScalarPred::Cmp(CmpOp::Lt, cutoff),
    });
    let ord_cust = p.add(PhysOp::Project {
        positions: ord_sel,
        col: col("orders", "o_custkey"),
    });
    let co_pairs = hash_join(&mut p, cust, ord_cust);
    let ord_keys = p.add(PhysOp::ProjectSide {
        pairs: co_pairs,
        side: Side::Probe,
        col: col("orders", "o_orderkey"),
    });
    let li_sel = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_shipdate"),
        pred: ScalarPred::Cmp(CmpOp::Gt, cutoff),
    });
    let li_keys = p.add(PhysOp::Project {
        positions: li_sel,
        col: col("lineitem", "l_orderkey"),
    });
    let pairs = hash_join(&mut p, ord_keys, li_keys);
    let rev = pairs_revenue(&mut p, pairs);
    let okey = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_orderkey"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: okey,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    p.add(PhysOp::TopN { input: g, n: 10 });
    p
}

/// Q4: order priority checking — quarter of orders, lineitem
/// commit<receipt semi-join, count by priority.
fn q04(variant: u8) -> Plan {
    let mut p = Plan::new("Q4");
    let d0 = shift(1.5 * YEAR_DAYS, variant);
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_orderdate",
        ScalarPred::Between(d0, d0 + 91.0),
        "o_orderkey",
    );
    let late = p.add(PhysOp::SelectColCmp {
        candidates: None,
        left: col("lineitem", "l_commitdate"),
        right: col("lineitem", "l_receiptdate"),
        op: CmpOp::Lt,
    });
    let li_keys = p.add(PhysOp::Project {
        positions: late,
        col: col("lineitem", "l_orderkey"),
    });
    let pairs = hash_join(&mut p, ord, li_keys);
    let prio = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Build,
        col: col("orders", "o_orderpriority"),
    });
    p.add(PhysOp::GroupAgg {
        keys: prio,
        values: None,
        agg: AggKind::Count,
    });
    p
}

/// Q5: local supplier volume — customer ⋈ orders(year) ⋈ lineitem,
/// revenue by nation.
fn q05(variant: u8) -> Plan {
    let mut p = Plan::new("Q5");
    let d0 = shift(2.0 * YEAR_DAYS, variant);
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_orderdate",
        ScalarPred::Between(d0, d0 + YEAR_DAYS),
        "o_orderkey",
    );
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Cmp(CmpOp::Gt, 0.0),
    });
    let li_keys = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_orderkey"),
    });
    let pairs = hash_join(&mut p, ord, li_keys);
    let rev = pairs_revenue(&mut p, pairs);
    let supp = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_suppkey"),
    });
    p.add(PhysOp::GroupAgg {
        keys: supp,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    p
}

/// Q7: volume shipping — two-year lineitem window joined through
/// supplier nation, revenue grouped by nation.
fn q07(variant: u8) -> Plan {
    let mut p = Plan::new("Q7");
    let d0 = shift(3.0 * YEAR_DAYS, variant);
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_shipdate"),
        pred: ScalarPred::Between(d0, d0 + 2.0 * YEAR_DAYS),
    });
    let li_supp = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_suppkey"),
    });
    let supp = select_project_key(
        &mut p,
        "supplier",
        "s_nationkey",
        ScalarPred::InSet(vec![(variant % 25) as i64, ((variant + 7) % 25) as i64]),
        "s_suppkey",
    );
    let pairs = hash_join(&mut p, supp, li_supp);
    let rev = pairs_revenue(&mut p, pairs);
    let nation = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_suppkey"),
    });
    p.add(PhysOp::GroupAgg {
        keys: nation,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    p
}

/// Q8: national market share — the paper's join-heavy case: part(type)
/// ⋈ lineitem ⋈ orders(2 years) ⋈ customer, grouped by year.
fn q08(variant: u8) -> Plan {
    let mut p = Plan::new("Q8");
    let ptype = (variant % 16) as f64 * 9.0;
    let parts = select_project_key(
        &mut p,
        "part",
        "p_type",
        ScalarPred::Between(ptype, ptype + 1.0),
        "p_partkey",
    );
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Gt0(),
    });
    let li_part = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_partkey"),
    });
    let pl_pairs = hash_join(&mut p, parts, li_part);
    let li_ord = p.add(PhysOp::ProjectSide {
        pairs: pl_pairs,
        side: Side::Probe,
        col: col("lineitem", "l_orderkey"),
    });
    let d0 = shift(3.0 * YEAR_DAYS, variant);
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_orderdate",
        ScalarPred::Between(d0, d0 + 2.0 * YEAR_DAYS),
        "o_orderkey",
    );
    let ol_pairs = hash_join(&mut p, ord, li_ord);
    let cust_keys = p.add(PhysOp::ProjectSide {
        pairs: ol_pairs,
        side: Side::Build,
        col: col("orders", "o_custkey"),
    });
    let cust = select_project_key(
        &mut p,
        "customer",
        "c_acctbal",
        ScalarPred::Cmp(CmpOp::Gt, -1000.0),
        "c_custkey",
    );
    let oc_pairs = hash_join(&mut p, cust, cust_keys);
    let date = p.add(PhysOp::ProjectSide {
        pairs: oc_pairs,
        side: Side::Build,
        col: col("customer", "c_nationkey"),
    });
    let bal = p.add(PhysOp::ProjectSide {
        pairs: oc_pairs,
        side: Side::Build,
        col: col("customer", "c_acctbal"),
    });
    p.add(PhysOp::GroupAgg {
        keys: date,
        values: Some(bal),
        agg: AggKind::Sum,
    });
    p
}

/// Q9: product type profit — the largest join pipeline:
/// part(type ~5 %) ⋈ lineitem ⋈ partsupp ⋈ orders, profit by nation/year.
fn q09(variant: u8) -> Plan {
    let mut p = Plan::new("Q9");
    let ptype = (variant % 16) as f64 * 9.0;
    let parts = select_project_key(
        &mut p,
        "part",
        "p_type",
        ScalarPred::Between(ptype, ptype + 7.0),
        "p_partkey",
    );
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Gt0(),
    });
    let li_part = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_partkey"),
    });
    let pl_pairs = hash_join(&mut p, parts, li_part);
    let rev = pairs_revenue(&mut p, pl_pairs);
    let li_supp = p.add(PhysOp::ProjectSide {
        pairs: pl_pairs,
        side: Side::Probe,
        col: col("lineitem", "l_suppkey"),
    });
    let supp = select_project_key(
        &mut p,
        "supplier",
        "s_acctbal",
        ScalarPred::Cmp(CmpOp::Gt, -1000.0),
        "s_suppkey",
    );
    let sl_pairs = hash_join(&mut p, supp, li_supp);
    let nation = p.add(PhysOp::ProjectSide {
        pairs: sl_pairs,
        side: Side::Build,
        col: col("supplier", "s_nationkey"),
    });
    let g1 = p.add(PhysOp::GroupAgg {
        keys: nation,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    // Second pipeline: partsupp cost side.
    let ps = select_project_key(
        &mut p,
        "partsupp",
        "ps_availqty",
        ScalarPred::Cmp(CmpOp::Gt, 0.0),
        "ps_partkey",
    );
    let ps_pairs = hash_join(&mut p, parts, ps);
    let cost_supp = p.add(PhysOp::ProjectSide {
        pairs: ps_pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_suppkey"),
    });
    let cost = p.add(PhysOp::ProjectSide {
        pairs: ps_pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_supplycost"),
    });
    let g2 = p.add(PhysOp::GroupAgg {
        keys: cost_supp,
        values: Some(cost),
        agg: AggKind::Sum,
    });
    // Final: combine both aggregates (small).
    let t1 = p.add(PhysOp::TopN { input: g1, n: 25 });
    let _ = g2;
    let _ = t1;
    p.add(PhysOp::TopN { input: g2, n: 25 });
    p
}

/// Q10: returned item reporting — quarter of orders ⋈ customer ⋈
/// lineitem(returnflag), top 20 customers.
fn q10(variant: u8) -> Plan {
    let mut p = Plan::new("Q10");
    let d0 = shift(2.5 * YEAR_DAYS, variant);
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_orderdate",
        ScalarPred::Between(d0, d0 + 91.0),
        "o_orderkey",
    );
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_returnflag"),
        pred: ScalarPred::Cmp(CmpOp::Eq, 2.0), // 'R'
    });
    let li_keys = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_orderkey"),
    });
    let pairs = hash_join(&mut p, ord, li_keys);
    let rev = pairs_revenue(&mut p, pairs);
    let cust = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Build,
        col: col("orders", "o_custkey"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: cust,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    p.add(PhysOp::TopN { input: g, n: 20 });
    p
}

/// Q11: important stock — partsupp ⋈ supplier(nation), value by part.
fn q11(variant: u8) -> Plan {
    let mut p = Plan::new("Q11");
    let supp = select_project_key(
        &mut p,
        "supplier",
        "s_nationkey",
        ScalarPred::Cmp(CmpOp::Eq, (variant % 25) as f64),
        "s_suppkey",
    );
    let ps = p.add(PhysOp::ScanSelect {
        col: col("partsupp", "ps_availqty"),
        pred: ScalarPred::Gt0(),
    });
    let ps_supp = p.add(PhysOp::Project {
        positions: ps,
        col: col("partsupp", "ps_suppkey"),
    });
    let pairs = hash_join(&mut p, supp, ps_supp);
    let part = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_partkey"),
    });
    let value = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_supplycost"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: part,
        values: Some(value),
        agg: AggKind::Sum,
    });
    p.add(PhysOp::TopN { input: g, n: 100 });
    p
}

/// Q12: shipping modes — one-year receipt window with a 2-of-7 shipmode
/// IN list, counts by priority.
fn q12(variant: u8) -> Plan {
    let mut p = Plan::new("Q12");
    let d0 = shift(2.0 * YEAR_DAYS, variant);
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_receiptdate"),
        pred: ScalarPred::Between(d0, d0 + YEAR_DAYS),
    });
    let li2 = p.add(PhysOp::SelectAnd {
        candidates: li,
        col: col("lineitem", "l_shipmode"),
        pred: ScalarPred::InSet(vec![(variant % 7) as i64, ((variant + 3) % 7) as i64]),
    });
    let li_keys = p.add(PhysOp::Project {
        positions: li2,
        col: col("lineitem", "l_orderkey"),
    });
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_totalprice",
        ScalarPred::Cmp(CmpOp::Gt, 0.0),
        "o_orderkey",
    );
    let pairs = hash_join(&mut p, ord, li_keys);
    let prio = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Build,
        col: col("orders", "o_orderpriority"),
    });
    p.add(PhysOp::GroupAgg {
        keys: prio,
        values: None,
        agg: AggKind::Count,
    });
    p
}

/// Q13: customer distribution — orders grouped by customer, then counts
/// of counts.
fn q13(variant: u8) -> Plan {
    let mut p = Plan::new("Q13");
    let ord = p.add(PhysOp::ScanSelect {
        col: col("orders", "o_orderpriority"),
        pred: ScalarPred::Cmp(CmpOp::Ne, (variant % 5) as f64),
    });
    let cust = p.add(PhysOp::Project {
        positions: ord,
        col: col("orders", "o_custkey"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: cust,
        values: None,
        agg: AggKind::Count,
    });
    p.add(PhysOp::TopN { input: g, n: 100 });
    p
}

/// Q14: promotion effect — one-month lineitem ⋈ part, revenue ratio.
fn q14(variant: u8) -> Plan {
    let mut p = Plan::new("Q14");
    let d0 = shift(3.5 * YEAR_DAYS, variant);
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_shipdate"),
        pred: ScalarPred::Between(d0, d0 + 30.0),
    });
    let li_part = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_partkey"),
    });
    let parts = select_project_key(
        &mut p,
        "part",
        "p_type",
        ScalarPred::Cmp(CmpOp::Lt, 30.0), // "PROMO%" ≈ 20 %
        "p_partkey",
    );
    let pairs = hash_join(&mut p, parts, li_part);
    let rev = pairs_revenue(&mut p, pairs);
    p.add(PhysOp::AggrSum { values: rev });
    p
}

/// Q15: top supplier — quarter of lineitem revenue by supplier, top 1.
fn q15(variant: u8) -> Plan {
    let mut p = Plan::new("Q15");
    let d0 = shift(4.0 * YEAR_DAYS, variant);
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_shipdate"),
        pred: ScalarPred::Between(d0, d0 + 91.0),
    });
    let supp = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_suppkey"),
    });
    let price = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_extendedprice"),
    });
    let disc = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_discount"),
    });
    let rev = p.add(PhysOp::BinOp {
        left: price,
        right: disc,
        op: ArithOp::MulOneMinus,
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: supp,
        values: Some(rev),
        agg: AggKind::Sum,
    });
    p.add(PhysOp::TopN { input: g, n: 1 });
    p
}

/// Q16: parts/supplier relationship — part(brand≠, size IN 8) ⋈
/// partsupp, counts.
fn q16(variant: u8) -> Plan {
    let mut p = Plan::new("Q16");
    let brand = (variant % 25) as f64;
    let sizes: Vec<i64> = (0..8)
        .map(|i| ((variant as i64 + i * 5) % 50) + 1)
        .collect();
    let parts_sel = p.add(PhysOp::ScanSelect {
        col: col("part", "p_brand"),
        pred: ScalarPred::Cmp(CmpOp::Ne, brand),
    });
    let parts_sz = p.add(PhysOp::SelectAnd {
        candidates: parts_sel,
        col: col("part", "p_size"),
        pred: ScalarPred::InSet(sizes),
    });
    let parts = p.add(PhysOp::Project {
        positions: parts_sz,
        col: col("part", "p_partkey"),
    });
    let ps = select_project_key(
        &mut p,
        "partsupp",
        "ps_availqty",
        ScalarPred::Gt0(),
        "ps_partkey",
    );
    let pairs = hash_join(&mut p, parts, ps);
    let brandk = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Build,
        col: col("part", "p_brand"),
    });
    p.add(PhysOp::GroupAgg {
        keys: brandk,
        values: None,
        agg: AggKind::Count,
    });
    p
}

/// Q17: small-quantity-order revenue — tight part selection ⋈ lineitem,
/// low-quantity filter, sum.
fn q17(variant: u8) -> Plan {
    let mut p = Plan::new("Q17");
    let brand = (variant % 25) as f64;
    let container = (variant % 40) as f64;
    let parts_b = p.add(PhysOp::ScanSelect {
        col: col("part", "p_brand"),
        pred: ScalarPred::Cmp(CmpOp::Eq, brand),
    });
    let parts_c = p.add(PhysOp::SelectAnd {
        candidates: parts_b,
        col: col("part", "p_container"),
        pred: ScalarPred::Cmp(CmpOp::Eq, container),
    });
    let parts = p.add(PhysOp::Project {
        positions: parts_c,
        col: col("part", "p_partkey"),
    });
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Cmp(CmpOp::Lt, 5.0), // < avg*0.2 ≈ 5 of 25
    });
    let li_part = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_partkey"),
    });
    let pairs = hash_join(&mut p, parts, li_part);
    let price = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_extendedprice"),
    });
    p.add(PhysOp::AggrSum { values: price });
    p
}

/// Q18: large volume customers — lineitem grouped by order (huge
/// group-by), top orders joined back.
fn q18(variant: u8) -> Plan {
    let mut p = Plan::new("Q18");
    let li = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Cmp(CmpOp::Gt, (variant % 4) as f64),
    });
    let okey = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_orderkey"),
    });
    let qty = p.add(PhysOp::Project {
        positions: li,
        col: col("lineitem", "l_quantity"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: okey,
        values: Some(qty),
        agg: AggKind::Sum,
    });
    p.add(PhysOp::TopN { input: g, n: 100 });
    p
}

/// Q19: discounted revenue — the IN-heavy case the paper highlights:
/// brand/container IN lists on part ⋈ quantity-banded lineitem.
fn q19(variant: u8) -> Plan {
    let mut p = Plan::new("Q19");
    let b = variant as i64;
    let parts_b = p.add(PhysOp::ScanSelect {
        col: col("part", "p_brand"),
        pred: ScalarPred::InSet(vec![b % 25, (b + 8) % 25, (b + 16) % 25]),
    });
    let parts_c = p.add(PhysOp::SelectAnd {
        candidates: parts_b,
        col: col("part", "p_container"),
        pred: ScalarPred::InSet(vec![b % 40, (b + 10) % 40, (b + 20) % 40, (b + 30) % 40]),
    });
    let parts = p.add(PhysOp::Project {
        positions: parts_c,
        col: col("part", "p_partkey"),
    });
    let li_q = p.add(PhysOp::ScanSelect {
        col: col("lineitem", "l_quantity"),
        pred: ScalarPred::Between(1.0, 30.0),
    });
    let li_m = p.add(PhysOp::SelectAnd {
        candidates: li_q,
        col: col("lineitem", "l_shipmode"),
        pred: ScalarPred::InSet(vec![b % 7, (b + 2) % 7]),
    });
    let li_part = p.add(PhysOp::Project {
        positions: li_m,
        col: col("lineitem", "l_partkey"),
    });
    let pairs = hash_join(&mut p, parts, li_part);
    let rev = pairs_revenue(&mut p, pairs);
    p.add(PhysOp::AggrSum { values: rev });
    p
}

/// Q20: potential part promotion — part(name-like ~1 %) ⋈ partsupp ⋈
/// supplier.
fn q20(variant: u8) -> Plan {
    let mut p = Plan::new("Q20");
    let t = (variant % 16) as f64 * 9.0;
    let parts = select_project_key(
        &mut p,
        "part",
        "p_type",
        ScalarPred::Between(t, t + 1.0),
        "p_partkey",
    );
    let ps = select_project_key(
        &mut p,
        "partsupp",
        "ps_availqty",
        ScalarPred::Cmp(CmpOp::Gt, 100.0),
        "ps_partkey",
    );
    let pairs = hash_join(&mut p, parts, ps);
    let supp_keys = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("partsupp", "ps_suppkey"),
    });
    let supp = select_project_key(
        &mut p,
        "supplier",
        "s_acctbal",
        ScalarPred::Cmp(CmpOp::Gt, 0.0),
        "s_suppkey",
    );
    let pairs2 = hash_join(&mut p, supp, supp_keys);
    let nat = p.add(PhysOp::ProjectSide {
        pairs: pairs2,
        side: Side::Build,
        col: col("supplier", "s_nationkey"),
    });
    p.add(PhysOp::GroupAgg {
        keys: nat,
        values: None,
        agg: AggKind::Count,
    });
    p
}

/// Q21: suppliers who kept orders waiting — supplier(nation) ⋈ late
/// lineitem ⋈ orders('F'), counts by supplier, top 100.
fn q21(variant: u8) -> Plan {
    let mut p = Plan::new("Q21");
    let supp = select_project_key(
        &mut p,
        "supplier",
        "s_nationkey",
        ScalarPred::Cmp(CmpOp::Eq, (variant % 25) as f64),
        "s_suppkey",
    );
    let late = p.add(PhysOp::SelectColCmp {
        candidates: None,
        left: col("lineitem", "l_receiptdate"),
        right: col("lineitem", "l_commitdate"),
        op: CmpOp::Gt,
    });
    let li_supp = p.add(PhysOp::Project {
        positions: late,
        col: col("lineitem", "l_suppkey"),
    });
    let pairs = hash_join(&mut p, supp, li_supp);
    let li_ord = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Probe,
        col: col("lineitem", "l_orderkey"),
    });
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_orderstatus",
        ScalarPred::Cmp(CmpOp::Eq, 0.0), // 'F'
        "o_orderkey",
    );
    let pairs2 = hash_join(&mut p, ord, li_ord);
    let suppk = p.add(PhysOp::ProjectSide {
        pairs: pairs2,
        side: Side::Probe,
        col: col("lineitem", "l_suppkey"),
    });
    let g = p.add(PhysOp::GroupAgg {
        keys: suppk,
        values: None,
        agg: AggKind::Count,
    });
    p.add(PhysOp::TopN { input: g, n: 100 });
    p
}

/// Q22: global sales opportunity — customer phone-country IN 7 with
/// account balance filter, anti-joined against orders (approximated by a
/// join to active orders), counts by country code.
fn q22(variant: u8) -> Plan {
    let mut p = Plan::new("Q22");
    let b = variant as i64;
    let cc: Vec<i64> = (0..7).map(|i| 10 + (b + i * 3) % 25).collect();
    let cust_cc = p.add(PhysOp::ScanSelect {
        col: col("customer", "c_phone_cc"),
        pred: ScalarPred::InSet(cc),
    });
    let cust_bal = p.add(PhysOp::SelectAnd {
        candidates: cust_cc,
        col: col("customer", "c_acctbal"),
        pred: ScalarPred::Cmp(CmpOp::Gt, 4500.0),
    });
    let cust = p.add(PhysOp::Project {
        positions: cust_bal,
        col: col("customer", "c_custkey"),
    });
    let ord = select_project_key(
        &mut p,
        "orders",
        "o_orderstatus",
        ScalarPred::Cmp(CmpOp::Eq, 1.0),
        "o_custkey",
    );
    let pairs = hash_join(&mut p, cust, ord);
    let ccode = p.add(PhysOp::ProjectSide {
        pairs,
        side: Side::Build,
        col: col("customer", "c_phone_cc"),
    });
    p.add(PhysOp::GroupAgg {
        keys: ccode,
        values: None,
        agg: AggKind::Count,
    });
    p
}

impl ScalarPred {
    /// `> 0` — the "all rows" scan predicate used where TPC-H scans a
    /// whole table (keeps the operator shape of a real scan).
    #[allow(non_snake_case)]
    pub fn Gt0() -> ScalarPred {
        ScalarPred::Cmp(CmpOp::Gt, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_22_queries_build() {
        for n in 1..=22u8 {
            for variant in [0u8, 3] {
                let plan = build_tpch(n, variant);
                assert!(!plan.is_empty(), "Q{n} empty");
                // Root must be a result-producing op.
                let root = plan.node(plan.root());
                assert!(
                    matches!(
                        root,
                        PhysOp::AggrSum { .. } | PhysOp::GroupAgg { .. } | PhysOp::TopN { .. }
                    ),
                    "Q{n} root is {:?}",
                    root.mal_name()
                );
            }
        }
    }

    #[test]
    fn q6_matches_paper_plan() {
        let p = q06(0);
        let names: Vec<_> = p.nodes().iter().map(|o| o.mal_name()).collect();
        assert_eq!(
            names,
            vec![
                "algebra.thetasubselect",
                "algebra.subselect",
                "algebra.subselect",
                "algebra.projection",
                "algebra.projection",
                "batcalc.*",
                "aggr.sum",
            ]
        );
    }

    #[test]
    fn join_heavy_queries_have_more_joins() {
        let count_joins = |p: &Plan| {
            p.nodes()
                .iter()
                .filter(|o| matches!(o, PhysOp::JoinProbe { .. }))
                .count()
        };
        let q6 = build_tpch(6, 0);
        let q8 = build_tpch(8, 0);
        let q9 = build_tpch(9, 0);
        assert_eq!(count_joins(&q6), 0);
        assert!(count_joins(&q8) >= 3, "Q8 should be join-heavy");
        assert!(count_joins(&q9) >= 3, "Q9 should be join-heavy");
    }

    #[test]
    fn in_heavy_queries_use_insets() {
        let has_inset = |p: &Plan| {
            p.nodes().iter().any(|o| {
                matches!(
                    o,
                    PhysOp::ScanSelect {
                        pred: ScalarPred::InSet(_),
                        ..
                    } | PhysOp::SelectAnd {
                        pred: ScalarPred::InSet(_),
                        ..
                    }
                )
            })
        };
        assert!(has_inset(&build_tpch(19, 0)), "Q19 needs IN predicates");
        assert!(has_inset(&build_tpch(22, 0)), "Q22 needs IN predicates");
    }

    #[test]
    fn variants_change_fingerprint_relevant_params() {
        let a = build_tpch(6, 0);
        let b = build_tpch(6, 1);
        // The shipdate window must differ between variants.
        let window = |p: &Plan| match p.node(NodeId(1)) {
            PhysOp::SelectAnd {
                pred: ScalarPred::Between(lo, _),
                ..
            } => *lo,
            _ => panic!("unexpected plan shape"),
        };
        assert_ne!(window(&a), window(&b));
    }

    #[test]
    fn theta_subselect_thresholds() {
        let p = theta_subselect(45);
        match p.node(NodeId(0)) {
            PhysOp::ScanSelect {
                pred: ScalarPred::Cmp(CmpOp::Lt, t),
                ..
            } => {
                assert!((*t - 24.0).abs() < 1.0, "threshold {t}");
            }
            _ => panic!("unexpected plan shape"),
        }
        let p2 = theta_subselect(100);
        match p2.node(NodeId(0)) {
            PhysOp::ScanSelect {
                pred: ScalarPred::Cmp(CmpOp::Lt, t),
                ..
            } => {
                assert!(*t >= 51.0, "100% must pass everything, got {t}");
            }
            _ => panic!("unexpected plan shape"),
        }
    }

    #[test]
    fn spec_tags_are_distinct() {
        let mut tags: Vec<u32> = (1..=22)
            .map(|n| {
                QuerySpec::Tpch {
                    number: n,
                    variant: 0,
                }
                .tag()
            })
            .collect();
        tags.push(QuerySpec::Q6 { variant: 0 }.tag());
        tags.push(QuerySpec::ThetaSubselect { sel_pct: 45 }.tag());
        let mut dedup = tags.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(tags.len(), dedup.len());
    }

    #[test]
    fn query_names() {
        assert_eq!(
            query_name(&QuerySpec::Tpch {
                number: 9,
                variant: 0
            }),
            "Q9"
        );
        assert_eq!(
            query_name(&QuerySpec::ThetaSubselect { sel_pct: 45 }),
            "theta45"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn q23_rejected() {
        build_tpch(23, 0);
    }
}
