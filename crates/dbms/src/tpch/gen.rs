//! Deterministic TPC-H-style data generation.
//!
//! The paper evaluates on TPC-H at 1 GB (scale factor 1, lineitem ≈ 6 M
//! rows). The simulator works at 64 KiB segment granularity, so we expose
//! a fractional [`TpchScale`] and run the same protocols at reduced scale
//! (shapes are preserved; see EXPERIMENTS.md). Distributions follow the
//! TPC-H spec closely enough for the selectivities the 22 plans rely on:
//! uniform quantities 1..=50, discounts 0..=0.10 in cents, ship dates
//! spread over 1992–1998, 25 nations in 5 regions, low-cardinality
//! dictionary columns with uniform codes.

use crate::storage::bat::ColData;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Number of days covered by order dates (1992-01-01 .. 1998-08-02).
pub const ORDER_DATE_DAYS: i64 = 2406;

/// Maximum l_shipdate value (orderdate + up to 121 days).
pub const MAX_SHIP_DAY: i64 = ORDER_DATE_DAYS + 121;

/// Scale of the generated database.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TpchScale {
    /// Fraction of TPC-H SF1 (1.0 = 6 M lineitem rows ≈ 1 GB raw).
    pub sf: f64,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl TpchScale {
    /// A scale suitable for unit tests (lineitem ≈ 12 k rows).
    pub fn test_tiny() -> Self {
        TpchScale {
            sf: 0.002,
            seed: 42,
        }
    }

    /// The default harness scale (lineitem ≈ 600 k rows, ≈ 100 MB-class
    /// database): large enough to exceed all caches, small enough to
    /// sweep many configurations.
    pub fn harness_default() -> Self {
        TpchScale { sf: 0.1, seed: 42 }
    }

    /// Lineitem row count at this scale.
    pub fn lineitem_rows(&self) -> usize {
        ((6_000_000.0 * self.sf) as usize).max(64)
    }

    /// Orders row count.
    pub fn orders_rows(&self) -> usize {
        ((1_500_000.0 * self.sf) as usize).max(16)
    }

    /// Customer row count.
    pub fn customer_rows(&self) -> usize {
        ((150_000.0 * self.sf) as usize).max(8)
    }

    /// Part row count.
    pub fn part_rows(&self) -> usize {
        ((200_000.0 * self.sf) as usize).max(8)
    }

    /// Supplier row count.
    pub fn supplier_rows(&self) -> usize {
        ((10_000.0 * self.sf) as usize).max(4)
    }

    /// Partsupp row count.
    pub fn partsupp_rows(&self) -> usize {
        ((800_000.0 * self.sf) as usize).max(16)
    }
}

/// One generated column.
pub struct GenColumn {
    /// Column name.
    pub name: &'static str,
    /// Values.
    pub data: ColData,
}

/// One generated table.
pub struct GenTable {
    /// Table name.
    pub name: &'static str,
    /// Columns in schema order.
    pub columns: Vec<GenColumn>,
}

/// The full generated database (pure data; the engine binds it to
/// simulated memory at load time).
pub struct TpchData {
    /// Tables in load order.
    pub tables: Vec<GenTable>,
    /// The scale it was generated at.
    pub scale: TpchScale,
}

fn i64_col(name: &'static str, v: Vec<i64>) -> GenColumn {
    GenColumn {
        name,
        data: ColData::I64(Arc::new(v)),
    }
}

fn f64_col(name: &'static str, v: Vec<f64>) -> GenColumn {
    GenColumn {
        name,
        data: ColData::F64(Arc::new(v)),
    }
}

impl TpchData {
    /// Generates the database.
    pub fn generate(scale: TpchScale) -> Self {
        let mut rng = StdRng::seed_from_u64(scale.seed);
        let n_li = scale.lineitem_rows();
        let n_ord = scale.orders_rows();
        let n_cust = scale.customer_rows();
        let n_part = scale.part_rows();
        let n_supp = scale.supplier_rows();
        let n_ps = scale.partsupp_rows();

        // --- orders (generated first; lineitem references orderdates) ---
        let o_orderkey: Vec<i64> = (0..n_ord as i64).collect();
        let o_custkey: Vec<i64> = (0..n_ord)
            .map(|_| rng.random_range(0..n_cust as i64))
            .collect();
        let o_orderdate: Vec<i64> = (0..n_ord)
            .map(|_| rng.random_range(0..ORDER_DATE_DAYS))
            .collect();
        let o_totalprice: Vec<f64> = (0..n_ord)
            .map(|_| rng.random_range(1_000.0..500_000.0))
            .collect();
        let o_orderpriority: Vec<i64> = (0..n_ord).map(|_| rng.random_range(0..5)).collect();
        // TPC-H: roughly half the orders are 'F' (0), rest 'O'/'P'.
        let o_orderstatus: Vec<i64> = (0..n_ord)
            .map(|_| {
                if rng.random_bool(0.49) {
                    0
                } else {
                    rng.random_range(1..3)
                }
            })
            .collect();

        // --- lineitem ---
        let mut l_orderkey = Vec::with_capacity(n_li);
        let mut l_shipdate = Vec::with_capacity(n_li);
        let mut l_commitdate = Vec::with_capacity(n_li);
        let mut l_receiptdate = Vec::with_capacity(n_li);
        for _ in 0..n_li {
            let ok = rng.random_range(0..n_ord as i64);
            let od = o_orderdate[ok as usize];
            let ship = od + rng.random_range(1i64..=121);
            let commit = od + rng.random_range(30i64..=90);
            let receipt = ship + rng.random_range(1i64..=30);
            l_orderkey.push(ok);
            l_shipdate.push(ship);
            l_commitdate.push(commit);
            l_receiptdate.push(receipt);
        }
        let l_partkey: Vec<i64> = (0..n_li)
            .map(|_| rng.random_range(0..n_part as i64))
            .collect();
        let l_suppkey: Vec<i64> = (0..n_li)
            .map(|_| rng.random_range(0..n_supp as i64))
            .collect();
        let l_quantity: Vec<f64> = (0..n_li).map(|_| rng.random_range(1..=50) as f64).collect();
        let l_extendedprice: Vec<f64> = (0..n_li)
            .map(|_| rng.random_range(900.0..105_000.0))
            .collect();
        let l_discount: Vec<f64> = (0..n_li)
            .map(|_| rng.random_range(0..=10) as f64 / 100.0)
            .collect();
        let l_tax: Vec<f64> = (0..n_li)
            .map(|_| rng.random_range(0..=8) as f64 / 100.0)
            .collect();
        let l_returnflag: Vec<i64> = (0..n_li)
            .map(|_| {
                if rng.random_bool(0.25) {
                    2
                } else {
                    rng.random_range(0..2)
                }
            })
            .collect();
        let l_linestatus: Vec<i64> = (0..n_li).map(|_| rng.random_range(0..2)).collect();
        let l_shipmode: Vec<i64> = (0..n_li).map(|_| rng.random_range(0..7)).collect();

        // --- customer ---
        let c_custkey: Vec<i64> = (0..n_cust as i64).collect();
        let c_nationkey: Vec<i64> = (0..n_cust).map(|_| rng.random_range(0..25)).collect();
        let c_acctbal: Vec<f64> = (0..n_cust)
            .map(|_| rng.random_range(-999.99..9_999.99))
            .collect();
        let c_mktsegment: Vec<i64> = (0..n_cust).map(|_| rng.random_range(0..5)).collect();
        let c_phone_cc: Vec<i64> = (0..n_cust).map(|_| rng.random_range(10..35)).collect();

        // --- part ---
        let p_partkey: Vec<i64> = (0..n_part as i64).collect();
        let p_size: Vec<i64> = (0..n_part).map(|_| rng.random_range(1..=50)).collect();
        let p_brand: Vec<i64> = (0..n_part).map(|_| rng.random_range(0..25)).collect();
        let p_container: Vec<i64> = (0..n_part).map(|_| rng.random_range(0..40)).collect();
        let p_type: Vec<i64> = (0..n_part).map(|_| rng.random_range(0..150)).collect();

        // --- supplier ---
        let s_suppkey: Vec<i64> = (0..n_supp as i64).collect();
        let s_nationkey: Vec<i64> = (0..n_supp).map(|_| rng.random_range(0..25)).collect();
        let s_acctbal: Vec<f64> = (0..n_supp)
            .map(|_| rng.random_range(-999.99..9_999.99))
            .collect();

        // --- partsupp ---
        let ps_partkey: Vec<i64> = (0..n_ps).map(|i| (i % n_part) as i64).collect();
        let ps_suppkey: Vec<i64> = (0..n_ps)
            .map(|_| rng.random_range(0..n_supp as i64))
            .collect();
        let ps_supplycost: Vec<f64> = (0..n_ps).map(|_| rng.random_range(1.0..1_000.0)).collect();
        let ps_availqty: Vec<i64> = (0..n_ps).map(|_| rng.random_range(1..10_000)).collect();

        // --- nation / region ---
        let n_nationkey: Vec<i64> = (0..25).collect();
        let n_regionkey: Vec<i64> = (0..25).map(|i| i % 5).collect();
        let r_regionkey: Vec<i64> = (0..5).collect();

        let tables = vec![
            GenTable {
                name: "lineitem",
                columns: vec![
                    i64_col("l_orderkey", l_orderkey),
                    i64_col("l_partkey", l_partkey),
                    i64_col("l_suppkey", l_suppkey),
                    f64_col("l_quantity", l_quantity),
                    f64_col("l_extendedprice", l_extendedprice),
                    f64_col("l_discount", l_discount),
                    f64_col("l_tax", l_tax),
                    i64_col("l_shipdate", l_shipdate),
                    i64_col("l_commitdate", l_commitdate),
                    i64_col("l_receiptdate", l_receiptdate),
                    i64_col("l_returnflag", l_returnflag),
                    i64_col("l_linestatus", l_linestatus),
                    i64_col("l_shipmode", l_shipmode),
                ],
            },
            GenTable {
                name: "orders",
                columns: vec![
                    i64_col("o_orderkey", o_orderkey),
                    i64_col("o_custkey", o_custkey),
                    i64_col("o_orderdate", o_orderdate),
                    f64_col("o_totalprice", o_totalprice),
                    i64_col("o_orderpriority", o_orderpriority),
                    i64_col("o_orderstatus", o_orderstatus),
                ],
            },
            GenTable {
                name: "customer",
                columns: vec![
                    i64_col("c_custkey", c_custkey),
                    i64_col("c_nationkey", c_nationkey),
                    f64_col("c_acctbal", c_acctbal),
                    i64_col("c_mktsegment", c_mktsegment),
                    i64_col("c_phone_cc", c_phone_cc),
                ],
            },
            GenTable {
                name: "part",
                columns: vec![
                    i64_col("p_partkey", p_partkey),
                    i64_col("p_size", p_size),
                    i64_col("p_brand", p_brand),
                    i64_col("p_container", p_container),
                    i64_col("p_type", p_type),
                ],
            },
            GenTable {
                name: "supplier",
                columns: vec![
                    i64_col("s_suppkey", s_suppkey),
                    i64_col("s_nationkey", s_nationkey),
                    f64_col("s_acctbal", s_acctbal),
                ],
            },
            GenTable {
                name: "partsupp",
                columns: vec![
                    i64_col("ps_partkey", ps_partkey),
                    i64_col("ps_suppkey", ps_suppkey),
                    f64_col("ps_supplycost", ps_supplycost),
                    i64_col("ps_availqty", ps_availqty),
                ],
            },
            GenTable {
                name: "nation",
                columns: vec![
                    i64_col("n_nationkey", n_nationkey),
                    i64_col("n_regionkey", n_regionkey),
                ],
            },
            GenTable {
                name: "region",
                columns: vec![i64_col("r_regionkey", r_regionkey)],
            },
        ];

        TpchData { tables, scale }
    }

    /// Finds a table by name.
    pub fn table(&self, name: &str) -> &GenTable {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("unknown table {name}"))
    }

    /// Finds a column by `table.column`.
    pub fn column(&self, table: &str, column: &str) -> &ColData {
        &self
            .table(table)
            .columns
            .iter()
            .find(|c| c.name == column)
            .unwrap_or_else(|| panic!("unknown column {table}.{column}"))
            .data
    }

    /// Total raw bytes across all columns (8 bytes per value).
    pub fn raw_bytes(&self) -> u64 {
        self.tables
            .iter()
            .flat_map(|t| t.columns.iter())
            .map(|c| c.data.len() as u64 * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TpchData::generate(TpchScale::test_tiny());
        let b = TpchData::generate(TpchScale::test_tiny());
        assert_eq!(
            a.column("lineitem", "l_quantity").as_f64(),
            b.column("lineitem", "l_quantity").as_f64()
        );
        let c = TpchData::generate(TpchScale {
            seed: 7,
            ..TpchScale::test_tiny()
        });
        assert_ne!(
            a.column("lineitem", "l_quantity").as_f64(),
            c.column("lineitem", "l_quantity").as_f64()
        );
    }

    #[test]
    fn row_counts_scale() {
        let s = TpchScale::test_tiny();
        let d = TpchData::generate(s);
        assert_eq!(d.column("lineitem", "l_orderkey").len(), s.lineitem_rows());
        assert_eq!(d.column("orders", "o_orderkey").len(), s.orders_rows());
        assert_eq!(d.column("nation", "n_nationkey").len(), 25);
        assert_eq!(d.column("region", "r_regionkey").len(), 5);
    }

    #[test]
    fn quantity_distribution_supports_paper_selectivities() {
        // The paper's thetasubselect uses l_quantity < 24 at ~45%
        // selectivity; quantities are uniform 1..=50 so the fraction must
        // be close to 46%.
        let d = TpchData::generate(TpchScale::test_tiny());
        let q = d.column("lineitem", "l_quantity").as_f64();
        let sel = q.iter().filter(|&&v| v < 24.0).count() as f64 / q.len() as f64;
        assert!((sel - 0.46).abs() < 0.03, "selectivity {sel}");
    }

    #[test]
    fn dates_are_consistent() {
        let d = TpchData::generate(TpchScale::test_tiny());
        let ship = d.column("lineitem", "l_shipdate").as_i64();
        let receipt = d.column("lineitem", "l_receiptdate").as_i64();
        assert!(ship.iter().zip(receipt).all(|(s, r)| r > s));
        assert!(ship.iter().all(|&s| (1..=MAX_SHIP_DAY).contains(&s)));
    }

    #[test]
    fn foreign_keys_in_range() {
        let d = TpchData::generate(TpchScale::test_tiny());
        let s = d.scale;
        let lok = d.column("lineitem", "l_orderkey").as_i64();
        assert!(lok.iter().all(|&k| (k as usize) < s.orders_rows()));
        let ock = d.column("orders", "o_custkey").as_i64();
        assert!(ock.iter().all(|&k| (k as usize) < s.customer_rows()));
        let nk = d.column("customer", "c_nationkey").as_i64();
        assert!(nk.iter().all(|&k| k < 25));
    }

    #[test]
    fn raw_bytes_accounting() {
        let d = TpchData::generate(TpchScale::test_tiny());
        let expected: u64 = d
            .tables
            .iter()
            .flat_map(|t| t.columns.iter())
            .map(|c| c.data.len() as u64 * 8)
            .sum();
        assert_eq!(d.raw_bytes(), expected);
        assert!(d.raw_bytes() > 0);
    }
}
