//! End-to-end engine tests: tiny TPC-H through the full simulated stack
//! (machine → kernel → workers → dataflow → results).

use emca_metrics::{SimDuration, SimTime};
use numa_sim::CoreId;
use os_sim::{CoreMask, Kernel, KernelConfig};
use volcano_db::client::{drain_results, spawn_clients, Workload};
use volcano_db::exec::engine::{Engine, EngineConfig, Flavor};
use volcano_db::tpch::queries::{QuerySpec, YEAR_DAYS};
use volcano_db::tpch::{TpchData, TpchScale};

fn setup(flavor: Flavor) -> (Kernel, Engine, TpchData) {
    let kernel_cfg = KernelConfig::default();
    let machine = numa_sim::Machine::new(numa_sim::MachineConfig::opteron_4x4(), kernel_cfg.tick);
    let mut kernel = Kernel::new(machine, kernel_cfg);
    let data = TpchData::generate(TpchScale::test_tiny());
    let engine = Engine::new(
        EngineConfig {
            flavor,
            ..EngineConfig::default()
        },
        kernel.machine().topology().n_nodes(),
    );
    engine.load(kernel.machine_mut(), &data, Some(CoreId(0)));
    (kernel, engine, data)
}

/// Reference Q6 revenue computed naively over the generated data.
fn q6_reference(data: &TpchData, variant: u8) -> f64 {
    let qty = data.column("lineitem", "l_quantity").as_f64();
    let ship = data.column("lineitem", "l_shipdate").as_i64();
    let disc = data.column("lineitem", "l_discount").as_f64();
    let price = data.column("lineitem", "l_extendedprice").as_f64();
    let d0 = 5.0 * YEAR_DAYS + (variant % 16) as f64 * 7.0;
    let d1 = d0 + YEAR_DAYS;
    let mut sum = 0.0;
    for i in 0..qty.len() {
        let s = ship[i] as f64;
        if qty[i] < 24.0 && s >= d0 && s <= d1 && disc[i] >= 0.06 && disc[i] <= 0.08 {
            sum += price[i] * disc[i];
        }
    }
    sum
}

fn run_to_completion(kernel: &mut Kernel, deadline_s: u64) {
    let done = kernel.run_until_cond(SimTime::from_secs(deadline_s), |k| {
        // All clients finished = only (blocked) workers remain alive.
        k.n_live_threads() > 0
            && (0..k.n_threads() as u32).map(os_sim::Tid).all(|t| {
                let name = k.thread_name(t);
                !name.starts_with("client") || k.thread_state(t) == os_sim::ThreadState::Finished
            })
    });
    assert!(done, "clients did not finish before the deadline");
}

#[test]
fn q6_result_matches_reference() {
    let (mut kernel, engine, data) = setup(Flavor::MonetDb);
    let all = CoreMask::all(kernel.machine().topology());
    let group = kernel.create_group(all);
    engine.start_workers(&mut kernel, group);
    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        1,
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: 1,
        },
    );
    run_to_completion(&mut kernel, 300);
    let results = drain_results(&logs);
    assert_eq!(results.len(), 1);
    let got = results[0].result.as_scalar();
    let want = q6_reference(&data, 0);
    assert!(
        (got - want).abs() <= want.abs() * 1e-9 + 1e-6,
        "Q6 revenue mismatch: got {got}, want {want}"
    );
    assert!(results[0].response() > SimDuration::ZERO);
    assert!(results[0].traffic.imc_bytes > 0, "query moved no memory");
}

#[test]
fn all_22_queries_execute() {
    let (mut kernel, engine, _data) = setup(Flavor::MonetDb);
    let all = CoreMask::all(kernel.machine().topology());
    let group = kernel.create_group(all);
    engine.start_workers(&mut kernel, group);
    let specs: Vec<QuerySpec> = (1..=22)
        .map(|n| QuerySpec::Tpch {
            number: n,
            variant: 0,
        })
        .collect();
    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        1,
        Workload::StablePhases { specs },
    );
    run_to_completion(&mut kernel, 3_000);
    let results = drain_results(&logs);
    assert_eq!(results.len(), 22, "every query must complete");
    for r in &results {
        assert!(
            r.response() > SimDuration::ZERO,
            "{} reported zero response time",
            r.label
        );
    }
    // Join-heavy Q9 must move more data than the single-scan microbench Q6.
    let bytes = |tag: u32| {
        results
            .iter()
            .find(|r| r.spec_tag == tag)
            .map(|r| r.traffic.imc_bytes)
            .unwrap_or(0)
    };
    assert!(bytes(9) > bytes(6), "Q9 should out-traffic Q6");
}

#[test]
fn concurrent_clients_share_the_pool() {
    let (mut kernel, engine, _data) = setup(Flavor::MonetDb);
    let all = CoreMask::all(kernel.machine().topology());
    let group = kernel.create_group(all);
    engine.start_workers(&mut kernel, group);
    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        8,
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: 3,
        },
    );
    run_to_completion(&mut kernel, 600);
    let results = drain_results(&logs);
    assert_eq!(results.len(), 24);
    let stats = engine.stats();
    assert_eq!(stats.queries_completed, 24);
    assert!(stats.tasks_executed >= 24, "tasks should have run");
}

#[test]
fn sqlserver_flavor_completes_and_localizes() {
    let (mut kernel, engine, data) = setup(Flavor::SqlServer);
    let all = CoreMask::all(kernel.machine().topology());
    let group = kernel.create_group(all);
    engine.start_workers(&mut kernel, group);
    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        2,
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: 2,
        },
    );
    run_to_completion(&mut kernel, 600);
    let results = drain_results(&logs);
    assert_eq!(results.len(), 4);
    let want = q6_reference(&data, 0);
    for r in &results {
        assert!((r.result.as_scalar() - want).abs() <= want.abs() * 1e-9 + 1e-6);
    }
}

#[test]
fn restricted_mask_still_completes() {
    let (mut kernel, engine, data) = setup(Flavor::MonetDb);
    // Only 2 cores handed to the OS: 16 workers timeshare them.
    let mask = CoreMask::from_cores([CoreId(0), CoreId(1)]);
    let group = kernel.create_group(mask);
    engine.start_workers(&mut kernel, group);
    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        2,
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: 1,
        },
    );
    run_to_completion(&mut kernel, 600);
    let results = drain_results(&logs);
    assert_eq!(results.len(), 2);
    let want = q6_reference(&data, 0);
    for r in &results {
        assert!((r.result.as_scalar() - want).abs() <= want.abs() * 1e-9 + 1e-6);
    }
    // Nothing ran outside the mask.
    let busy = kernel.machine().counters().busy_ns.snapshot();
    for b in &busy[2..] {
        assert_eq!(*b, 0, "work escaped the cpuset");
    }
}

#[test]
fn tomograph_traces_q6_operators() {
    let (mut kernel, engine, _data) = setup(Flavor::MonetDb);
    let all = CoreMask::all(kernel.machine().topology());
    let group = kernel.create_group(all);
    engine.start_workers(&mut kernel, group);
    let logs = spawn_clients(
        &mut kernel,
        &engine,
        group,
        1,
        Workload::Repeat {
            spec: QuerySpec::Q6 { variant: 0 },
            iterations: 1,
        },
    );
    run_to_completion(&mut kernel, 300);
    drop(logs);
    let core = engine.core_ref();
    let theta = core.tomograph.op("algebra.thetasubselect");
    let sum = core.tomograph.op("aggr.sum");
    assert!(theta.calls >= 1, "thetasubselect not traced");
    assert!(sum.calls >= 1, "aggr.sum not traced");
    assert!(theta.total_time > SimDuration::ZERO);
}
