//! Property tests: every monomorphized typed kernel in `exec::eval`
//! must be *output-identical* to its per-row naive reference
//! (`exec::eval::reference`) — the typed-kernel rework is a pure
//! wall-time optimisation.
//!
//! Covered: all three `ScalarPred` forms × both `ColData` types for the
//! selection kernels, both column-compare modes, all arithmetic /
//! aggregate shapes, flat-vs-hash group-by (with the merge combining
//! mixed accumulator forms), the flat join build/probe roundtrip with
//! provenance, and `top_n`.
//!
//! Values are drawn from ranges where f64 arithmetic is exact (the
//! engine's generated data lives well inside them), so float aggregate
//! totals must match bit for bit. Cases are deterministic per the
//! vendored proptest shim: fixed per-test seeds, `PROPTEST_CASES`
//! override honoured.

use proptest::prelude::*;
use std::sync::Arc;
use volcano_db::exec::eval::{self, reference, GroupAcc, ValsBuf};
use volcano_db::exec::mat::{FlatJoinMap, JoinTable};
use volcano_db::exec::plan::{AggKind, ArithOp, CmpOp, ScalarPred};
use volcano_db::storage::{ColData, ColType};

const CASES: u32 = 64;

fn i64_col(vals: &[i64]) -> ColData {
    ColData::I64(Arc::new(vals.to_vec()))
}

fn f64_col(vals: &[i64]) -> ColData {
    ColData::F64(Arc::new(vals.iter().map(|&v| v as f64).collect()))
}

/// Both typed views of the same logical values.
fn both_cols(vals: &[i64]) -> [ColData; 2] {
    [i64_col(vals), f64_col(vals)]
}

fn cmp_op(idx: u8) -> CmpOp {
    [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Eq,
        CmpOp::Ge,
        CmpOp::Gt,
        CmpOp::Ne,
    ][idx as usize % 6]
}

fn arith_op(idx: u8) -> ArithOp {
    [
        ArithOp::Add,
        ArithOp::Sub,
        ArithOp::Mul,
        ArithOp::MulOneMinus,
    ][idx as usize % 4]
}

/// Every predicate form over the generated value domain, including a
/// fractional constant (so integer columns exercise the f64 compare)
/// and sets both below and above the sorted-probe cutoff.
fn preds(k: i64, lo: i64, hi: i64, set: &[i64]) -> Vec<ScalarPred> {
    let mut out = vec![
        ScalarPred::Between(lo as f64, hi as f64),
        ScalarPred::Between(lo as f64 + 0.5, hi as f64 + 0.5),
        ScalarPred::InSet(set.to_vec()),
    ];
    for i in 0..6 {
        out.push(ScalarPred::Cmp(cmp_op(i), k as f64));
        out.push(ScalarPred::Cmp(cmp_op(i), k as f64 + 0.5));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn scan_select_matches_reference(
        vals in proptest::collection::vec(-50i64..50, 1..300),
        k in -50i64..50,
        bounds in (-50i64..50, 0i64..30),
        small_set in proptest::collection::vec(-50i64..50, 1..6),
        large_set in proptest::collection::vec(-50i64..50, 12..20),
        cut in (0usize..100, 0usize..100),
    ) {
        let (lo, width) = bounds;
        let start = cut.0 * vals.len() / 100;
        let end = start + cut.1 * (vals.len() - start) / 100;
        for col in both_cols(&vals) {
            for pred in preds(k, lo, lo + width, &small_set)
                .into_iter()
                .chain([ScalarPred::InSet(large_set.clone())])
            {
                prop_assert_eq!(
                    eval::scan_select(&col, start, end, &pred),
                    reference::scan_select(&col, start, end, &pred),
                    "pred {:?} over {:?}", pred, col.col_type()
                );
            }
        }
    }

    #[test]
    fn select_and_matches_reference(
        vals in proptest::collection::vec(-50i64..50, 1..300),
        picks in proptest::collection::vec(0usize..300, 0..120),
        k in -50i64..50,
        set in proptest::collection::vec(-50i64..50, 9..14),
    ) {
        let cands: Vec<u32> = picks
            .iter()
            .map(|&p| (p % vals.len()) as u32)
            .collect();
        for col in both_cols(&vals) {
            for pred in preds(k, k - 5, k + 5, &set) {
                prop_assert_eq!(
                    eval::select_and(&cands, &col, &pred),
                    reference::select_and(&cands, &col, &pred)
                );
            }
        }
    }

    #[test]
    fn select_col_cmp_matches_reference(
        l in proptest::collection::vec(-40i64..40, 1..200),
        r_off in proptest::collection::vec(-3i64..3, 1..200),
        op_idx in 0u8..6,
        picks in proptest::collection::vec(0usize..200, 0..80),
    ) {
        let n = l.len().min(r_off.len());
        let l = &l[..n];
        let r: Vec<i64> = (0..n).map(|i| l[i] + r_off[i]).collect();
        let op = cmp_op(op_idx);
        let cands: Vec<u32> = picks.iter().map(|&p| (p % n) as u32).collect();
        // All four type pairings, both modes.
        for lc in both_cols(l) {
            for rc in both_cols(&r) {
                prop_assert_eq!(
                    eval::select_col_cmp(None, &lc, &rc, op, (0, n)),
                    reference::select_col_cmp(None, &lc, &rc, op, (0, n))
                );
                prop_assert_eq!(
                    eval::select_col_cmp(Some(&cands), &lc, &rc, op, (0, 0)),
                    reference::select_col_cmp(Some(&cands), &lc, &rc, op, (0, 0))
                );
            }
        }
    }

    #[test]
    fn bin_op_and_sum_match_reference(
        vals in proptest::collection::vec(-1000i64..1000, 1..200),
        r_vals in proptest::collection::vec(-1000i64..1000, 1..200),
        op_idx in 0u8..4,
        cut in 0usize..100,
    ) {
        let n = vals.len().min(r_vals.len());
        let start = cut * n / 100;
        let op = arith_op(op_idx);
        for lc in both_cols(&vals[..n]) {
            for rc in both_cols(&r_vals[..n]) {
                prop_assert_eq!(
                    eval::bin_op(&lc, &rc, op, start, n),
                    reference::bin_op(&lc, &rc, op, start, n)
                );
                // The in-place form must write the identical slice.
                let mut buf = ValsBuf::new(ColType::F64, n);
                eval::bin_op_into(&lc, &rc, op, start, n, &mut buf);
                let ColData::F64(written) = buf.into_coldata() else {
                    unreachable!()
                };
                prop_assert_eq!(
                    &written[start..n],
                    &reference::bin_op(&lc, &rc, op, start, n)[..]
                );
            }
            prop_assert_eq!(
                eval::aggr_sum(&lc, start, n),
                reference::aggr_sum(&lc, start, n)
            );
        }
    }

    #[test]
    fn project_into_matches_project(
        vals in proptest::collection::vec(-1000i64..1000, 1..200),
        picks in proptest::collection::vec(0usize..200, 1..100),
    ) {
        let pos: Vec<u32> = picks.iter().map(|&p| (p % vals.len()) as u32).collect();
        for col in both_cols(&vals) {
            let copied = eval::project(&pos, &col);
            let mut buf = ValsBuf::new(col.col_type(), pos.len());
            eval::project_into(&pos, &col, &mut buf, 0);
            let in_place = buf.into_coldata();
            match (copied, in_place) {
                (ColData::I64(a), ColData::I64(b)) => prop_assert_eq!(a, b),
                (ColData::F64(a), ColData::F64(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "projection changed the column type"),
            }
        }
    }

    #[test]
    fn group_agg_flat_matches_hash_reference(
        keys in proptest::collection::vec(-200i64..200, 1..300),
        wide in proptest::collection::vec(0i64..2, 1..300),
        vals in proptest::collection::vec(-1000i64..1000, 1..300),
        count_mode in 0u8..2,
        n_parts in 1usize..5,
    ) {
        let n = keys.len().min(vals.len()).min(wide.len());
        // Mix in wide outliers so some partitions hash while others
        // stay dense — the merge must combine both forms.
        let keys: Vec<i64> = (0..n)
            .map(|i| keys[i] + wide[i] * (eval::DENSE_GROUP_SPAN as i64 + 7))
            .collect();
        let kc = i64_col(&keys);
        let vc = f64_col(&vals[..n]);
        let agg = if count_mode == 0 { AggKind::Sum } else { AggKind::Count };
        let values = if count_mode == 0 { Some(&vc) } else { None };

        let mut parts: Vec<GroupAcc> = Vec::new();
        let mut ref_parts = Vec::new();
        for p in 0..n_parts {
            let (s, e) = (n * p / n_parts, n * (p + 1) / n_parts);
            parts.push(eval::group_agg(&kc, values, agg, s, e));
            ref_parts.push(reference::group_agg(&kc, values, agg, s, e));
        }
        prop_assert_eq!(
            eval::merge_groups(parts),
            reference::merge_groups(ref_parts)
        );
    }

    #[test]
    fn join_roundtrip_matches_reference(
        build in proptest::collection::vec(0i64..60, 1..200),
        probe in proptest::collection::vec(0i64..80, 1..200),
        wide in 0u8..2,
        n_parts in 1usize..5,
        with_origins in 0u8..2,
    ) {
        // `wide` shifts one build key far away, forcing the hashed
        // layout; otherwise the direct layout handles the narrow span.
        let mut build = build;
        if wide == 1 {
            let n = build.len();
            build[n - 1] += 1 << 30;
        }
        let n = build.len();
        let parts: Vec<Vec<i64>> = (0..n_parts)
            .map(|p| {
                let (s, e) = (n * p / n_parts, n * (p + 1) / n_parts);
                eval::build_hash_part(&i64_col(&build), s, e)
            })
            .collect();
        let table = JoinTable {
            map: FlatJoinMap::from_parts(parts),
            build_origin: None,
            build_table: "orders",
        };
        let ref_map = reference::merge_hash(
            (0..n_parts).map(|p| {
                let (s, e) = (n * p / n_parts, n * (p + 1) / n_parts);
                reference::build_hash(&i64_col(&build), s, e)
            }),
        );
        let probe_col = i64_col(&probe);
        let (po, bo);
        if with_origins == 1 {
            let probe_origin: Vec<u32> = (0..probe.len() as u32).map(|i| i * 3 + 1).collect();
            let build_origin: Vec<u32> = (0..n as u32).map(|i| i * 5 + 2).collect();
            po = eval::probe_hash(
                &table, &probe_col, Some(&probe_origin), Some(&build_origin), 0, probe.len(),
            );
            bo = reference::probe_hash(
                &ref_map, &probe_col, Some(&probe_origin), Some(&build_origin), 0, probe.len(),
            );
        } else {
            po = eval::probe_hash(&table, &probe_col, None, None, 0, probe.len());
            bo = reference::probe_hash(&ref_map, &probe_col, None, None, 0, probe.len());
        }
        prop_assert_eq!(po, bo);
    }

    #[test]
    fn top_n_matches_reference(
        entries in proptest::collection::vec((-100i64..100, -50i64..50), 0..120),
        n in 0usize..140,
    ) {
        // Dedup keys so ties resolve identically; duplicate values stay
        // (the tie-by-key ordering is the interesting part).
        let mut groups: Vec<(i64, f64)> = entries
            .iter()
            .map(|&(k, v)| (k, v as f64))
            .collect();
        groups.sort_by_key(|&(k, _)| k);
        groups.dedup_by_key(|e| e.0);
        prop_assert_eq!(eval::top_n(&groups, n), reference::top_n(&groups, n));
    }
}
