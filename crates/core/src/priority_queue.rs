//! The adaptive mode's priority queue (§IV-B2).
//!
//! "A priority queue is used to indicate the node with the
//! largest/smallest amount of allocated memory (on top/bottom priority)
//! and the model allocates/releases a core near to such address space.
//! Each entry of the priority queue keeps the PIDs of the active threads
//! with their address spaces and the number of pages per NUMA node."
//!
//! [`NodePriorityQueue`] maintains exactly that ordering: nodes ranked by
//! the page counter of the tracked address space(s), refreshed from the
//! `numa_maps` statistics each control interval.

use numa_sim::NodeId;

/// Nodes ordered by resident page count.
#[derive(Clone, Debug, Default)]
pub struct NodePriorityQueue {
    /// `(pages, node)` sorted descending by pages (ties: lower node id
    /// first, keeping decisions deterministic).
    ranked: Vec<(u64, NodeId)>,
}

impl NodePriorityQueue {
    /// Builds the queue from a pages-per-node vector.
    pub fn from_pages(pages_per_node: &[u64]) -> Self {
        let mut ranked: Vec<(u64, NodeId)> = pages_per_node
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, NodeId(i as u16)))
            .collect();
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        NodePriorityQueue { ranked }
    }

    /// Refreshes in place (avoids reallocation in the control loop).
    pub fn refresh(&mut self, pages_per_node: &[u64]) {
        self.ranked.clear();
        self.ranked.extend(
            pages_per_node
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, NodeId(i as u16))),
        );
        self.ranked
            .sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    }

    /// The top-priority node (most pages), if any.
    pub fn top(&self) -> Option<NodeId> {
        self.ranked.first().map(|&(_, n)| n)
    }

    /// The bottom-priority node (fewest pages), if any.
    pub fn bottom(&self) -> Option<NodeId> {
        self.ranked.last().map(|&(_, n)| n)
    }

    /// Nodes from most to fewest pages.
    pub fn descending(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ranked.iter().map(|&(_, n)| n)
    }

    /// Nodes from fewest to most pages.
    pub fn ascending(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ranked.iter().rev().map(|&(_, n)| n)
    }

    /// Page count of a node.
    pub fn pages_of(&self, node: NodeId) -> u64 {
        self.ranked
            .iter()
            .find(|&&(_, n)| n == node)
            .map(|&(p, _)| p)
            .unwrap_or(0)
    }

    /// Number of ranked nodes.
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_by_pages_descending() {
        let q = NodePriorityQueue::from_pages(&[10, 40, 5, 40]);
        // Ties broken by node id: node 1 before node 3.
        let order: Vec<u16> = q.descending().map(|n| n.0).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(q.top(), Some(NodeId(1)));
        assert_eq!(q.bottom(), Some(NodeId(2)));
    }

    #[test]
    fn ascending_is_reverse() {
        let q = NodePriorityQueue::from_pages(&[3, 1, 2]);
        let asc: Vec<u16> = q.ascending().map(|n| n.0).collect();
        assert_eq!(asc, vec![1, 2, 0]);
    }

    #[test]
    fn refresh_reorders() {
        let mut q = NodePriorityQueue::from_pages(&[9, 0]);
        assert_eq!(q.top(), Some(NodeId(0)));
        q.refresh(&[0, 9]);
        assert_eq!(q.top(), Some(NodeId(1)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pages_lookup() {
        let q = NodePriorityQueue::from_pages(&[7, 3]);
        assert_eq!(q.pages_of(NodeId(0)), 7);
        assert_eq!(q.pages_of(NodeId(1)), 3);
        assert_eq!(q.pages_of(NodeId(9)), 0);
    }

    #[test]
    fn empty_queue() {
        let q = NodePriorityQueue::from_pages(&[]);
        assert!(q.is_empty());
        assert_eq!(q.top(), None);
        assert_eq!(q.bottom(), None);
    }
}
