//! Multi-tenant core arbitration — running *several* elastic mechanisms
//! on one machine.
//!
//! The paper allocates cores to a single DBMS group; co-located tenants
//! (in the spirit of *SAM* and *OLTP on Hardware Islands*) each run
//! their own [`ElasticMechanism`](crate::ElasticMechanism) + policy, and
//! the [`TenantArbiter`] resolves their contention for the shared cores:
//! no core is ever owned by two tenants, and an [`ArbiterMode`] decides
//! who wins when both want to grow.
//!
//! Arbitration is *work-conserving*: a tenant may overshoot its
//! guaranteed share while the machine has idle cores and nobody else is
//! starving, but a starved tenant (one that keeps demanding while below
//! its guarantee) forces over-share tenants to yield cores back through
//! their normal release path.
//!
//! # Index structures
//!
//! At serverless tenant counts (64–256 over a run's lifetime, with
//! churn) the original per-decision scans — fold every tenant's mask for
//! `foreign_mask`, sum every mask for `free_cores`, walk every streak
//! for `someone_starved`, sort every call for the priority ladder — put
//! O(tenants × cores) on the control tick. [`TenantArbiter`] instead
//! maintains:
//!
//! - an **ownership index** `owner[core] → tenant slot`, making the
//!   foreign test per core O(1) and `foreign_mask` a single mask
//!   subtraction from the aggregate `all_owned`;
//! - a **free-core count** derived from `all_owned` (O(1));
//! - a cached **active weight total**, making the fair-share guarantee
//!   O(1);
//! - an incremental **starved-tenant counter**, making the yield
//!   predicate O(1);
//! - a maintained **priority order** (active slots sorted by descending
//!   weight) plus a per-tick guarantee cache, so priority-mode
//!   guarantees cost one O(active) pass instead of a sort per query.
//!
//! Tenants arrive and depart ([`TenantArbiter::register`] /
//! [`TenantArbiter::deregister`]): slots are a slab, reused
//! lowest-index-first, and the *resident* set (active tenants) is capped
//! at the machine width so every resident keeps its one-core floor. The
//! original scan-based arbiter survives verbatim as
//! [`reference::ReferenceArbiter`]; the property suite in
//! `tests/arbiter_equivalence.rs` drives both with identical traces and
//! demands identical decisions.
//!
//! ```
//! use elastic_core::tenant::{ArbiterMode, TenantArbiter};
//! use numa_sim::CoreId;
//!
//! let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 16);
//! let a = arb.register("olap", 1, None);
//! let b = arb.register("oltp", 1, None);
//! assert_eq!(arb.guarantee(a), 8); // symmetric weights: half each
//! assert!(arb.try_claim(a, CoreId(0)));
//! assert!(!arb.try_claim(b, CoreId(0)), "core 0 is taken");
//! assert!(arb.foreign_mask(b).contains(CoreId(0)));
//! let freed = arb.deregister(a); // departure reclaims the cores
//! assert!(freed.contains(CoreId(0)));
//! assert!(arb.try_claim(b, CoreId(0)), "reclaimed core is claimable");
//! ```

use numa_sim::CoreId;
use os_sim::CoreMask;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Control steps a growth demand stays "live" for starvation tracking.
pub const DEMAND_TTL: u32 = 8;
/// Consecutive starved steps before over-share tenants must yield.
pub const STARVE_AFTER: u32 = 2;

/// Identifies one registered tenant (a slot in the arbiter's slab —
/// reused after [`TenantArbiter::deregister`], so holders must drop the
/// id when the tenant departs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant's slot index in the arbiter's slab.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// How contention between tenants is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ArbiterMode {
    /// Weights are strict priorities: the highest-priority demanding
    /// tenant is entitled to every core above the one-core floor the
    /// others keep.
    Priority,
    /// Weighted proportional shares: tenant *i* is guaranteed
    /// `ntotal · wᵢ / Σw` cores (at least one), and may exceed its share
    /// only while no other tenant is starved.
    #[default]
    FairShare,
    /// Like fair share, but each tenant's registered core budget is a
    /// *hard ceiling* it can never grow past, idle machine or not.
    BudgetCapped,
}

impl ArbiterMode {
    /// All modes, in CLI listing order.
    pub const ALL: [ArbiterMode; 3] = [
        ArbiterMode::Priority,
        ArbiterMode::FairShare,
        ArbiterMode::BudgetCapped,
    ];

    /// The canonical name (parseable back via `TryFrom<&str>`).
    pub fn name(self) -> &'static str {
        match self {
            ArbiterMode::Priority => "priority",
            ArbiterMode::FairShare => "fairshare",
            ArbiterMode::BudgetCapped => "budget",
        }
    }
}

impl std::fmt::Display for ArbiterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl TryFrom<&str> for ArbiterMode {
    type Error = String;

    fn try_from(name: &str) -> Result<Self, Self::Error> {
        ArbiterMode::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ArbiterMode::ALL.iter().map(|m| m.name()).collect();
                format!(
                    "unknown arbiter mode {name:?} (valid: {})",
                    valid.join(", ")
                )
            })
    }
}

/// Per-tenant arbitration state (one slab slot).
#[derive(Clone, Debug)]
struct TenantState {
    name: String,
    /// Fair-share weight, or priority rank (higher wins) in
    /// [`ArbiterMode::Priority`].
    weight: u32,
    /// Hard core ceiling in [`ArbiterMode::BudgetCapped`] (ignored by
    /// the other modes; `None` = machine size).
    budget: Option<u32>,
    /// Cores this tenant currently owns.
    owned: CoreMask,
    /// Steps the last growth demand stays live.
    demand_ttl: u32,
    /// Consecutive steps spent demanding while below the guarantee.
    starved_streak: u32,
    /// False once the tenant has departed (slot awaits reuse).
    active: bool,
}

/// Resolves core contention between tenant mechanisms. See the
/// [module docs](self) for the arbitration rules and index structures.
#[derive(Clone, Debug)]
pub struct TenantArbiter {
    mode: ArbiterMode,
    ntotal: u32,
    tenants: Vec<TenantState>,
    /// Ownership index: `owner[core] = Some(slot)` iff some tenant owns
    /// the core. Sized at the mask width so any claimable core id maps.
    owner: Vec<Option<u32>>,
    /// Union of every tenant's `owned` mask (`foreign_mask` = this minus
    /// the tenant's own mask; `free_cores` = `ntotal` minus its count).
    all_owned: CoreMask,
    /// Σ weight over *active* tenants (fair-share denominator).
    total_weight: u64,
    /// Number of active (resident) tenants.
    n_active: u32,
    /// Active tenants with `starved_streak >= STARVE_AFTER`.
    starved_now: u32,
    /// Inactive slots, reused lowest-index-first.
    free_slots: BinaryHeap<Reverse<u32>>,
    /// Active slots by `(descending weight, slot)` — the priority ladder.
    prio_order: Vec<u32>,
    /// Priority-mode guarantees, cached until the next state mutation.
    prio_cache: RefCell<Option<Vec<u32>>>,
    /// Growth attempts denied (ceiling or contention).
    pub denials: u64,
    /// Forced releases of over-share tenants toward a starved one.
    pub yields: u64,
}

/// The arbiter as shared by the tenant mechanisms of one simulation
/// (the stack is single-threaded, like the rest of the simulator).
pub type SharedArbiter = Rc<RefCell<TenantArbiter>>;

/// Width of the ownership index: [`CoreMask`] caps machines at 64
/// cores, so every claimable core id fits.
const OWNER_SLOTS: usize = 64;

impl TenantArbiter {
    /// An arbiter for a machine of `ntotal` cores.
    pub fn new(mode: ArbiterMode, ntotal: u32) -> Self {
        assert!(ntotal >= 1, "machine must have cores");
        TenantArbiter {
            mode,
            ntotal,
            tenants: Vec::new(),
            owner: vec![None; OWNER_SLOTS],
            all_owned: CoreMask::EMPTY,
            total_weight: 0,
            n_active: 0,
            starved_now: 0,
            free_slots: BinaryHeap::new(),
            prio_order: Vec::new(),
            prio_cache: RefCell::new(None),
            denials: 0,
            yields: 0,
        }
    }

    /// Wraps a fresh arbiter for sharing between mechanisms.
    pub fn shared(mode: ArbiterMode, ntotal: u32) -> SharedArbiter {
        Rc::new(RefCell::new(Self::new(mode, ntotal)))
    }

    /// Registers a tenant; `weight` is its fair-share weight (or
    /// priority rank), `budget` its hard core ceiling under
    /// [`ArbiterMode::BudgetCapped`]. The resident set is capped at the
    /// machine width (every resident keeps a one-core floor); departed
    /// tenants' slots are reused lowest-index-first.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        weight: u32,
        budget: Option<u32>,
    ) -> TenantId {
        assert!(weight >= 1, "weight must be positive");
        assert!(self.n_active < self.ntotal, "more tenants than cores");
        let state = TenantState {
            name: name.into(),
            weight,
            budget,
            owned: CoreMask::EMPTY,
            demand_ttl: 0,
            starved_streak: 0,
            active: true,
        };
        let slot = match self.free_slots.pop() {
            Some(Reverse(s)) => {
                self.tenants[s as usize] = state;
                s
            }
            None => {
                self.tenants.push(state);
                self.tenants.len() as u32 - 1
            }
        };
        self.total_weight += weight as u64;
        self.n_active += 1;
        self.prio_insert(slot);
        self.invalidate();
        TenantId(slot)
    }

    /// Departs a tenant: its cores return to the free pool (for the
    /// caller to redistribute), its slot becomes reusable, and it stops
    /// counting toward guarantees and starvation. Returns the reclaimed
    /// mask.
    pub fn deregister(&mut self, t: TenantId) -> CoreMask {
        let slot = t.idx();
        assert!(
            self.tenants.get(slot).is_some_and(|s| s.active),
            "deregistering an unknown or departed tenant"
        );
        let s = &mut self.tenants[slot];
        let released = s.owned;
        let weight = s.weight;
        let was_starved = s.starved_streak >= STARVE_AFTER;
        s.owned = CoreMask::EMPTY;
        s.demand_ttl = 0;
        s.starved_streak = 0;
        s.active = false;
        for core in released.iter() {
            if let Some(o) = self.owner.get_mut(core.idx()) {
                *o = None;
            }
        }
        self.all_owned = self.all_owned.minus(released);
        self.total_weight = self.total_weight.saturating_sub(weight as u64);
        self.n_active = self.n_active.saturating_sub(1);
        if was_starved {
            self.starved_now = self.starved_now.saturating_sub(1);
        }
        self.prio_order.retain(|&p| p != slot as u32);
        self.free_slots.push(Reverse(slot as u32));
        self.invalidate();
        released
    }

    /// Whether the tenant is currently registered (has not departed).
    pub fn is_active(&self, t: TenantId) -> bool {
        self.tenants.get(t.idx()).is_some_and(|s| s.active)
    }

    /// Number of resident (active) tenants.
    pub fn n_tenants(&self) -> usize {
        self.n_active as usize
    }

    /// Total slab slots ever allocated (active + reusable).
    pub fn n_slots(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's registered name.
    pub fn name(&self, t: TenantId) -> &str {
        &self.tenants[t.idx()].name
    }

    /// The arbitration mode.
    pub fn mode(&self) -> ArbiterMode {
        self.mode
    }

    /// Cores the tenant currently owns.
    pub fn owned(&self, t: TenantId) -> CoreMask {
        self.tenants[t.idx()].owned
    }

    /// Cores owned by *other* tenants — the mask a tenant's placement
    /// policy must treat as unavailable
    /// ([`ModeCtx::barred`](crate::ModeCtx::barred)). One mask
    /// subtraction from the aggregate ownership index.
    pub fn foreign_mask(&self, t: TenantId) -> CoreMask {
        self.all_owned.minus(self.tenants[t.idx()].owned)
    }

    /// Cores owned by nobody.
    pub fn free_cores(&self) -> u32 {
        self.ntotal.saturating_sub(self.all_owned.count() as u32)
    }

    /// The tenant's guaranteed core count under the current mode and
    /// demand pattern: the share it may always insist on, forcing
    /// over-share tenants to yield.
    pub fn guarantee(&self, t: TenantId) -> u32 {
        match self.mode {
            ArbiterMode::FairShare => self.fair_share(t.idx()),
            ArbiterMode::BudgetCapped => self.fair_share(t.idx()).min(self.ceiling(t)),
            ArbiterMode::Priority => self.priority_guarantee_of(t.idx()),
        }
    }

    /// The hard core ceiling the tenant may never grow past.
    pub fn ceiling(&self, t: TenantId) -> u32 {
        match self.mode {
            ArbiterMode::BudgetCapped => self.tenants[t.idx()]
                .budget
                .unwrap_or(self.ntotal)
                .clamp(1, self.ntotal),
            ArbiterMode::Priority | ArbiterMode::FairShare => self.ntotal,
        }
    }

    /// `ntotal · wᵢ / Σw` over *active* weights, floored, at least one
    /// core — O(1) via the cached weight total.
    fn fair_share(&self, i: usize) -> u32 {
        fair_guarantee(self.ntotal, self.tenants[i].weight, self.total_weight)
    }

    /// Priority-mode guarantee for one slot, from the per-tick cache
    /// (computed by one pass over the maintained priority ladder).
    fn priority_guarantee_of(&self, slot: usize) -> u32 {
        {
            let cached = self.prio_cache.borrow();
            if let Some(g) = cached.as_ref() {
                return g.get(slot).copied().unwrap_or(1);
            }
        }
        let g = self.compute_priority_guarantees();
        let out = g.get(slot).copied().unwrap_or(1);
        *self.prio_cache.borrow_mut() = Some(g);
        out
    }

    /// Priority-mode guarantees: active tenants keep a one-core floor;
    /// the remaining cores go to tenants in priority order — a
    /// *demanding* tenant soaks up everything still available, a quiet
    /// one is guaranteed only what it already owns.
    fn compute_priority_guarantees(&self) -> Vec<u32> {
        let mut g = vec![1u32; self.tenants.len()];
        let mut remaining = self.ntotal.saturating_sub(self.n_active);
        for &slot in &self.prio_order {
            let s = &self.tenants[slot as usize];
            let owned = s.owned.count() as u32;
            let want = if s.demand_ttl > 0 {
                remaining
            } else {
                owned.saturating_sub(1).min(remaining)
            };
            g[slot as usize] = 1 + want;
            remaining -= want;
        }
        g
    }

    /// Whether any *other* tenant has been starved long enough to force
    /// over-share tenants to yield — O(1) via the incremental counter.
    fn someone_starved(&self, except: usize) -> bool {
        let self_counted = self
            .tenants
            .get(except)
            .is_some_and(|s| s.active && s.starved_streak >= STARVE_AFTER);
        self.starved_now > u32::from(self_counted)
    }

    /// Per-control-step bookkeeping, fed by the tenant's mechanism:
    /// `wants_grow` is whether the PrT net classified Overload this step
    /// (post-shaping, so an SLA-damped tenant does not read as
    /// demanding).
    pub fn note(&mut self, t: TenantId, wants_grow: bool) {
        let guarantee = self.guarantee(t);
        let s = &mut self.tenants[t.idx()];
        if wants_grow {
            s.demand_ttl = DEMAND_TTL;
        } else {
            s.demand_ttl = s.demand_ttl.saturating_sub(1);
        }
        let starved = s.demand_ttl > 0 && (s.owned.count() as u32) < guarantee;
        let was_counted = s.starved_streak >= STARVE_AFTER;
        if starved {
            s.starved_streak += 1;
        } else {
            s.starved_streak = 0;
        }
        let now_counted = s.starved_streak >= STARVE_AFTER;
        match (was_counted, now_counted) {
            (false, true) => self.starved_now += 1,
            (true, false) => self.starved_now = self.starved_now.saturating_sub(1),
            _ => {}
        }
        self.invalidate();
    }

    /// Claims `core` for the tenant. Fails (and counts a denial) when the
    /// core is owned by another tenant, the claim would cross the
    /// tenant's ceiling, or it would grow past the guarantee while
    /// another tenant is starved.
    pub fn try_claim(&mut self, t: TenantId, core: CoreId) -> bool {
        let foreign = self
            .owner
            .get(core.idx())
            .copied()
            .flatten()
            .is_some_and(|o| o != t.0);
        if foreign {
            self.denials += 1;
            return false;
        }
        let after = self.tenants[t.idx()].owned.count() as u32 + 1;
        if after > self.ceiling(t) {
            self.denials += 1;
            return false;
        }
        if after > self.guarantee(t) && self.someone_starved(t.idx()) {
            self.denials += 1;
            return false;
        }
        self.grant(t, core);
        true
    }

    /// Claims a core during mechanism install, bypassing the contention
    /// checks (the initial allocation is below any sane guarantee).
    /// Panics if the core is already owned.
    pub fn claim_initial(&mut self, t: TenantId, core: CoreId) {
        assert!(
            !self.foreign_mask(t).contains(core),
            "initial core {core:?} already owned by another tenant"
        );
        self.grant(t, core);
    }

    /// Records ownership in both the per-tenant mask and the indexes.
    fn grant(&mut self, t: TenantId, core: CoreId) {
        self.tenants[t.idx()].owned.insert(core);
        self.all_owned.insert(core);
        if let Some(o) = self.owner.get_mut(core.idx()) {
            *o = Some(t.0);
        }
        self.invalidate();
    }

    /// Returns `core` to the free pool.
    pub fn release(&mut self, t: TenantId, core: CoreId) {
        if self.tenants[t.idx()].owned.remove(core) {
            self.all_owned.remove(core);
            if let Some(o) = self.owner.get_mut(core.idx()) {
                *o = None;
            }
        }
        self.invalidate();
    }

    /// Whether the tenant must shed a core this step: it sits above its
    /// guarantee, the machine has no free cores, and another tenant is
    /// starving below *its* guarantee. A pure predicate — the caller
    /// counts a yield (bumping [`TenantArbiter::yields`]) only when a
    /// core is actually shed.
    pub fn must_yield(&self, t: TenantId) -> bool {
        if self.free_cores() > 0 {
            return false;
        }
        let over = self.tenants[t.idx()].owned.count() as u32 > self.guarantee(t);
        over && self.someone_starved(t.idx())
    }

    /// Drops the priority-guarantee cache (any state mutation).
    fn invalidate(&mut self) {
        *self.prio_cache.borrow_mut() = None;
    }

    /// Inserts an active slot into the priority ladder at its
    /// `(descending weight, slot)` position.
    fn prio_insert(&mut self, slot: u32) {
        let key = (Reverse(self.tenants[slot as usize].weight), slot);
        let pos = self
            .prio_order
            .partition_point(|&s| (Reverse(self.tenants[s as usize].weight), s) < key);
        self.prio_order.insert(pos, slot);
    }

    /// Cross-checks every index against a full scan of the slab.
    /// Test/diagnostic aid for the equivalence suite; panics (asserts)
    /// on any divergence.
    #[doc(hidden)]
    pub fn check_index_invariants(&self) {
        let mut scan_all = CoreMask::EMPTY;
        let mut scan_weight = 0u64;
        let mut scan_active = 0u32;
        let mut scan_starved = 0u32;
        for (i, s) in self.tenants.iter().enumerate() {
            if !s.active {
                assert!(s.owned.is_empty(), "departed slot {i} still owns cores");
                continue;
            }
            scan_active += 1;
            scan_weight += s.weight as u64;
            if s.starved_streak >= STARVE_AFTER {
                scan_starved += 1;
            }
            assert!(
                scan_all.and(s.owned).is_empty(),
                "slot {i} overlaps another tenant's cores"
            );
            scan_all = scan_all.or(s.owned);
            for core in s.owned.iter() {
                assert!(
                    self.owner.get(core.idx()).copied().flatten() == Some(i as u32),
                    "owner index disagrees on core {core:?}"
                );
            }
        }
        assert!(scan_all == self.all_owned, "aggregate ownership mask stale");
        assert!(scan_weight == self.total_weight, "weight total stale");
        assert!(scan_active == self.n_active, "active count stale");
        assert!(scan_starved == self.starved_now, "starved counter stale");
        for (c, o) in self.owner.iter().enumerate() {
            if let Some(slot) = o {
                let owned = self
                    .tenants
                    .get(*slot as usize)
                    .is_some_and(|s| s.active && s.owned.contains(CoreId(c as u16)));
                assert!(owned, "owner index has a dangling entry for core {c}");
            }
        }
        let mut sorted = self.prio_order.clone();
        sorted.sort_by_key(|&s| (Reverse(self.tenants[s as usize].weight), s));
        assert!(sorted == self.prio_order, "priority ladder out of order");
        assert!(
            self.prio_order.len() == self.n_active as usize,
            "priority ladder misses active tenants"
        );
    }
}

/// The fair-share guarantee arithmetic — `ntotal · weight / Σweights`,
/// floored, at least one core. Exposed so external checks (the
/// `mt_fairshare` convergence gate) validate against exactly what the
/// arbiter grants rather than re-deriving the rounding rule.
pub fn fair_guarantee(ntotal: u32, weight: u32, total_weight: u64) -> u32 {
    if total_weight == 0 {
        return 1;
    }
    ((ntotal as u64 * weight as u64 / total_weight) as u32).max(1)
}

/// A tenant mechanism's handle on the shared arbiter.
#[derive(Clone)]
pub struct TenantBinding {
    /// The arbiter shared by every tenant of the simulation.
    pub arbiter: SharedArbiter,
    /// This mechanism's tenant.
    pub tenant: TenantId,
}

impl TenantBinding {
    /// Binds `tenant` to `arbiter`.
    pub fn new(arbiter: SharedArbiter, tenant: TenantId) -> Self {
        TenantBinding { arbiter, tenant }
    }
}

impl std::fmt::Debug for TenantBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantBinding")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

pub mod reference {
    //! The original O(tenants × cores) scan-based arbiter, retained
    //! verbatim (plus churn: `active` flags and lowest-slot reuse, the
    //! same slab policy as the indexed arbiter) as the oracle for the
    //! decision-equivalence property suite. Every decision method scans
    //! the full slab; none of the indexes exist here.

    use super::{fair_guarantee, ArbiterMode, TenantId, DEMAND_TTL, STARVE_AFTER};
    use numa_sim::CoreId;
    use os_sim::CoreMask;
    use std::cmp::Reverse;

    #[derive(Clone, Debug)]
    struct RefTenantState {
        name: String,
        weight: u32,
        budget: Option<u32>,
        owned: CoreMask,
        demand_ttl: u32,
        starved_streak: u32,
        active: bool,
    }

    /// Scan-based arbiter with the exact decision rules of
    /// [`TenantArbiter`](super::TenantArbiter) — the equivalence
    /// oracle.
    #[derive(Clone, Debug)]
    pub struct ReferenceArbiter {
        mode: ArbiterMode,
        ntotal: u32,
        tenants: Vec<RefTenantState>,
        /// Growth attempts denied (ceiling or contention).
        pub denials: u64,
        /// Forced releases of over-share tenants toward a starved one.
        pub yields: u64,
    }

    impl ReferenceArbiter {
        /// An arbiter for a machine of `ntotal` cores.
        pub fn new(mode: ArbiterMode, ntotal: u32) -> Self {
            assert!(ntotal >= 1, "machine must have cores");
            ReferenceArbiter {
                mode,
                ntotal,
                tenants: Vec::new(),
                denials: 0,
                yields: 0,
            }
        }

        /// Registers a tenant into the lowest inactive slot (or a fresh
        /// one) — the same slab policy as the indexed arbiter.
        pub fn register(
            &mut self,
            name: impl Into<String>,
            weight: u32,
            budget: Option<u32>,
        ) -> TenantId {
            assert!(weight >= 1, "weight must be positive");
            let n_active = self.tenants.iter().filter(|s| s.active).count() as u32;
            assert!(n_active < self.ntotal, "more tenants than cores");
            let state = RefTenantState {
                name: name.into(),
                weight,
                budget,
                owned: CoreMask::EMPTY,
                demand_ttl: 0,
                starved_streak: 0,
                active: true,
            };
            let slot = match self.tenants.iter().position(|s| !s.active) {
                Some(s) => {
                    self.tenants[s] = state;
                    s
                }
                None => {
                    self.tenants.push(state);
                    self.tenants.len() - 1
                }
            };
            TenantId(slot as u32)
        }

        /// Departs a tenant; returns the reclaimed mask.
        pub fn deregister(&mut self, t: TenantId) -> CoreMask {
            let s = &mut self.tenants[t.idx()];
            assert!(s.active, "deregistering an unknown or departed tenant");
            let released = s.owned;
            s.owned = CoreMask::EMPTY;
            s.demand_ttl = 0;
            s.starved_streak = 0;
            s.active = false;
            released
        }

        /// Whether the tenant is currently registered.
        pub fn is_active(&self, t: TenantId) -> bool {
            self.tenants.get(t.idx()).is_some_and(|s| s.active)
        }

        /// Number of resident (active) tenants — a full scan.
        pub fn n_tenants(&self) -> usize {
            self.tenants.iter().filter(|s| s.active).count()
        }

        /// The tenant's registered name.
        pub fn name(&self, t: TenantId) -> &str {
            &self.tenants[t.idx()].name
        }

        /// Cores the tenant currently owns.
        pub fn owned(&self, t: TenantId) -> CoreMask {
            self.tenants[t.idx()].owned
        }

        /// Cores owned by *other* tenants — a fold over the slab.
        pub fn foreign_mask(&self, t: TenantId) -> CoreMask {
            self.tenants
                .iter()
                .enumerate()
                .filter(|&(i, s)| i != t.idx() && s.active)
                .fold(CoreMask::EMPTY, |acc, (_, s)| acc.or(s.owned))
        }

        /// Cores owned by nobody — a sum over the slab.
        pub fn free_cores(&self) -> u32 {
            let owned: usize = self
                .tenants
                .iter()
                .filter(|s| s.active)
                .map(|s| s.owned.count())
                .sum();
            self.ntotal.saturating_sub(owned as u32)
        }

        fn demanding(&self, i: usize) -> bool {
            self.tenants[i].demand_ttl > 0
        }

        /// The tenant's guaranteed core count.
        pub fn guarantee(&self, t: TenantId) -> u32 {
            match self.mode {
                ArbiterMode::FairShare => self.fair_share(t.idx()),
                ArbiterMode::BudgetCapped => self.fair_share(t.idx()).min(self.ceiling(t)),
                ArbiterMode::Priority => self.priority_guarantees()[t.idx()],
            }
        }

        /// The hard core ceiling the tenant may never grow past.
        pub fn ceiling(&self, t: TenantId) -> u32 {
            match self.mode {
                ArbiterMode::BudgetCapped => self.tenants[t.idx()]
                    .budget
                    .unwrap_or(self.ntotal)
                    .clamp(1, self.ntotal),
                ArbiterMode::Priority | ArbiterMode::FairShare => self.ntotal,
            }
        }

        /// `ntotal · wᵢ / Σw`, summing the weights on every call.
        fn fair_share(&self, i: usize) -> u32 {
            let total: u64 = self
                .tenants
                .iter()
                .filter(|s| s.active)
                .map(|s| s.weight as u64)
                .sum();
            fair_guarantee(self.ntotal, self.tenants[i].weight, total)
        }

        /// Priority-mode guarantees, sorting the slab on every call.
        fn priority_guarantees(&self) -> Vec<u32> {
            let mut order: Vec<usize> = (0..self.tenants.len())
                .filter(|&i| self.tenants[i].active)
                .collect();
            order.sort_by_key(|&i| (Reverse(self.tenants[i].weight), i));
            let mut remaining = self.ntotal.saturating_sub(order.len() as u32);
            let mut g = vec![1u32; self.tenants.len()];
            for &i in &order {
                let owned = self.tenants[i].owned.count() as u32;
                let want = if self.demanding(i) {
                    remaining
                } else {
                    owned.saturating_sub(1).min(remaining)
                };
                g[i] = 1 + want;
                remaining -= want;
            }
            g
        }

        /// Whether any *other* tenant is starved — a scan.
        fn someone_starved(&self, except: usize) -> bool {
            self.tenants
                .iter()
                .enumerate()
                .any(|(i, s)| i != except && s.active && s.starved_streak >= STARVE_AFTER)
        }

        /// Per-control-step bookkeeping (see
        /// [`TenantArbiter::note`](super::TenantArbiter::note)).
        pub fn note(&mut self, t: TenantId, wants_grow: bool) {
            let guarantee = self.guarantee(t);
            let s = &mut self.tenants[t.idx()];
            if wants_grow {
                s.demand_ttl = DEMAND_TTL;
            } else {
                s.demand_ttl = s.demand_ttl.saturating_sub(1);
            }
            let starved = s.demand_ttl > 0 && (s.owned.count() as u32) < guarantee;
            if starved {
                s.starved_streak += 1;
            } else {
                s.starved_streak = 0;
            }
        }

        /// Claims `core`; same denial rules as the indexed arbiter.
        pub fn try_claim(&mut self, t: TenantId, core: CoreId) -> bool {
            if self.foreign_mask(t).contains(core) {
                self.denials += 1;
                return false;
            }
            let after = self.tenants[t.idx()].owned.count() as u32 + 1;
            if after > self.ceiling(t) {
                self.denials += 1;
                return false;
            }
            if after > self.guarantee(t) && self.someone_starved(t.idx()) {
                self.denials += 1;
                return false;
            }
            self.tenants[t.idx()].owned.insert(core);
            true
        }

        /// Install-time claim; panics if the core is already owned.
        pub fn claim_initial(&mut self, t: TenantId, core: CoreId) {
            assert!(
                !self.foreign_mask(t).contains(core),
                "initial core {core:?} already owned by another tenant"
            );
            self.tenants[t.idx()].owned.insert(core);
        }

        /// Returns `core` to the free pool.
        pub fn release(&mut self, t: TenantId, core: CoreId) {
            self.tenants[t.idx()].owned.remove(core);
        }

        /// Whether the tenant must shed a core this step.
        pub fn must_yield(&self, t: TenantId) -> bool {
            if self.free_cores() > 0 {
                return false;
            }
            let over = self.tenants[t.idx()].owned.count() as u32 > self.guarantee(t);
            over && self.someone_starved(t.idx())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two(mode: ArbiterMode) -> (TenantArbiter, TenantId, TenantId) {
        let mut arb = TenantArbiter::new(mode, 16);
        let a = arb.register("a", 1, None);
        let b = arb.register("b", 1, None);
        (arb, a, b)
    }

    #[test]
    fn mode_names_round_trip() {
        for m in ArbiterMode::ALL {
            assert_eq!(ArbiterMode::try_from(m.name()), Ok(m));
        }
        let err = ArbiterMode::try_from("magic").unwrap_err();
        assert!(err.contains("fairshare"), "{err}");
    }

    #[test]
    fn ownership_is_exclusive() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        assert!(arb.try_claim(a, CoreId(3)));
        assert!(!arb.try_claim(b, CoreId(3)), "double claim must fail");
        assert_eq!(arb.denials, 1);
        assert!(arb.foreign_mask(b).contains(CoreId(3)));
        assert!(!arb.foreign_mask(a).contains(CoreId(3)));
        arb.release(a, CoreId(3));
        assert!(arb.try_claim(b, CoreId(3)), "released core is claimable");
        assert_eq!(arb.free_cores(), 15);
        arb.check_index_invariants();
    }

    #[test]
    fn fair_share_guarantees_split_by_weight() {
        let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 16);
        let a = arb.register("heavy", 3, None);
        let b = arb.register("light", 1, None);
        assert_eq!(arb.guarantee(a), 12);
        assert_eq!(arb.guarantee(b), 4);
        assert_eq!(arb.ceiling(a), 16, "fair share has no hard ceiling");
    }

    #[test]
    fn overshoot_allowed_until_someone_starves() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        // Tenant a grabs 10 cores on an otherwise idle machine: fine.
        for c in 0..10 {
            assert!(arb.try_claim(a, CoreId(c)), "core {c} uncontended");
        }
        // Tenant b starts demanding below its guarantee of 8.
        arb.note(b, true);
        arb.note(b, true);
        // Over-guarantee growth for a is now denied...
        assert!(!arb.try_claim(a, CoreId(10)));
        // ...but b may still claim free cores.
        assert!(arb.try_claim(b, CoreId(10)));
    }

    #[test]
    fn yield_fires_only_when_machine_is_full_and_peer_starves() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        for c in 0..14 {
            assert!(arb.try_claim(a, CoreId(c)));
        }
        assert!(arb.try_claim(b, CoreId(14)));
        assert!(arb.try_claim(b, CoreId(15)));
        // Machine full, but b not demanding: no yield.
        assert!(!arb.must_yield(a));
        arb.note(b, true);
        arb.note(b, true);
        assert!(arb.must_yield(a), "starved peer forces the yield");
        // b itself is below guarantee: never asked to yield.
        assert!(!arb.must_yield(b));
    }

    #[test]
    fn satisfied_tenant_stops_starving() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        for c in 0..8 {
            assert!(arb.try_claim(b, CoreId(c)));
        }
        arb.note(b, true);
        arb.note(b, true);
        assert_eq!(
            arb.guarantee(b),
            8,
            "b sits exactly at its guarantee — not starved"
        );
        for c in 8..16 {
            assert!(arb.try_claim(a, CoreId(c)), "a can take its own half");
        }
        assert!(!arb.must_yield(a));
    }

    #[test]
    fn budget_mode_enforces_hard_ceiling() {
        let mut arb = TenantArbiter::new(ArbiterMode::BudgetCapped, 16);
        let a = arb.register("capped", 1, Some(3));
        assert_eq!(arb.ceiling(a), 3);
        for c in 0..3 {
            assert!(arb.try_claim(a, CoreId(c)));
        }
        assert!(
            !arb.try_claim(a, CoreId(3)),
            "budget is a ceiling even on an idle machine"
        );
        assert_eq!(arb.denials, 1);
    }

    #[test]
    fn priority_mode_squeezes_the_low_tenant() {
        let mut arb = TenantArbiter::new(ArbiterMode::Priority, 16);
        let hi = arb.register("prod", 2, None);
        let lo = arb.register("batch", 1, None);
        // Both demanding: the high-priority tenant is guaranteed
        // everything above the low tenant's one-core floor.
        arb.note(hi, true);
        arb.note(lo, true);
        assert_eq!(arb.guarantee(hi), 15);
        assert_eq!(arb.guarantee(lo), 1);
        // Quiet high-priority tenant holding 4 cores keeps them, the
        // demanding low tenant may have the rest.
        for c in 0..4 {
            assert!(arb.try_claim(hi, CoreId(c)));
        }
        for _ in 0..DEMAND_TTL + 1 {
            arb.note(hi, false);
        }
        assert_eq!(arb.guarantee(hi), 4);
        assert_eq!(arb.guarantee(lo), 12);
    }

    #[test]
    fn claim_initial_bypasses_contention() {
        let (mut arb, a, b) = two(ArbiterMode::BudgetCapped);
        arb.note(b, true);
        arb.note(b, true);
        arb.claim_initial(a, CoreId(0));
        assert!(arb.owned(a).contains(CoreId(0)));
        assert_eq!(arb.denials, 0);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn claim_initial_panics_on_double_ownership() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        arb.claim_initial(a, CoreId(0));
        arb.claim_initial(b, CoreId(0));
    }

    #[test]
    fn deregister_reclaims_cores_and_weight() {
        let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 16);
        let a = arb.register("a", 3, None);
        let b = arb.register("b", 1, None);
        for c in 0..6 {
            assert!(arb.try_claim(a, CoreId(c)));
        }
        assert_eq!(arb.guarantee(b), 4);
        let freed = arb.deregister(a);
        assert_eq!(freed.count(), 6);
        assert!(!arb.is_active(a));
        assert_eq!(arb.free_cores(), 16, "departed cores return to the pool");
        assert_eq!(arb.guarantee(b), 16, "survivor inherits the whole machine");
        assert!(arb.foreign_mask(b).is_empty());
        for c in 0..6 {
            assert!(arb.try_claim(b, CoreId(c)), "reclaimed core {c} claimable");
        }
        arb.check_index_invariants();
    }

    #[test]
    fn slots_are_reused_lowest_first() {
        let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 16);
        let a = arb.register("a", 1, None);
        let b = arb.register("b", 1, None);
        let c = arb.register("c", 1, None);
        arb.deregister(b);
        arb.deregister(a);
        let d = arb.register("d", 1, None);
        assert_eq!(d, a, "lowest departed slot is reused first");
        let e = arb.register("e", 1, None);
        assert_eq!(e, b);
        let f = arb.register("f", 1, None);
        assert_eq!(f.idx(), 3, "no free slot left: slab grows");
        assert_eq!(arb.n_tenants(), 4);
        assert_eq!(arb.n_slots(), 4);
        assert_eq!(arb.name(c), "c");
        arb.check_index_invariants();
    }

    #[test]
    fn departed_tenant_stops_starving_peers() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        for c in 0..16 {
            assert!(arb.try_claim(a, CoreId(c)));
        }
        arb.note(b, true);
        arb.note(b, true);
        assert!(arb.must_yield(a), "starved b forces the yield");
        arb.deregister(b);
        assert!(!arb.must_yield(a), "departed tenant no longer starves");
        arb.check_index_invariants();
    }

    #[test]
    fn resident_cap_counts_only_active_tenants() {
        let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 4);
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(arb.register(format!("t{i}"), 1, None));
        }
        assert_eq!(arb.n_tenants(), 4, "resident set at machine width");
        // Churn far past the machine width: depart one, admit one.
        for round in 0..16 {
            let gone = ids.remove(0);
            arb.deregister(gone);
            ids.push(arb.register(format!("n{round}"), 1, None));
            arb.check_index_invariants();
        }
        assert_eq!(arb.n_tenants(), 4);
        assert!(arb.n_slots() <= 5, "slab reuses slots instead of growing");
    }

    #[test]
    #[should_panic(expected = "more tenants than cores")]
    fn resident_cap_rejects_overflow() {
        let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 2);
        arb.register("a", 1, None);
        arb.register("b", 1, None);
        arb.register("c", 1, None);
    }

    #[test]
    fn priority_ladder_tracks_churn() {
        let mut arb = TenantArbiter::new(ArbiterMode::Priority, 16);
        let hi = arb.register("hi", 3, None);
        let mid = arb.register("mid", 2, None);
        let lo = arb.register("lo", 1, None);
        arb.note(hi, true);
        arb.note(mid, true);
        arb.note(lo, true);
        assert_eq!(arb.guarantee(hi), 14);
        arb.deregister(hi);
        // mid now leads the ladder; the departed slot is ignored.
        assert_eq!(arb.guarantee(mid), 15);
        assert_eq!(arb.guarantee(lo), 1);
        let back = arb.register("back", 4, None);
        assert_eq!(back, hi, "slot reuse");
        arb.note(back, true);
        assert_eq!(arb.guarantee(back), 14, "new heaviest leads again");
        arb.check_index_invariants();
    }
}
