//! Multi-tenant core arbitration — running *several* elastic mechanisms
//! on one machine.
//!
//! The paper allocates cores to a single DBMS group; co-located tenants
//! (in the spirit of *SAM* and *OLTP on Hardware Islands*) each run
//! their own [`ElasticMechanism`](crate::ElasticMechanism) + policy, and
//! the [`TenantArbiter`] resolves their contention for the shared cores:
//! no core is ever owned by two tenants, and an [`ArbiterMode`] decides
//! who wins when both want to grow.
//!
//! Arbitration is *work-conserving*: a tenant may overshoot its
//! guaranteed share while the machine has idle cores and nobody else is
//! starving, but a starved tenant (one that keeps demanding while below
//! its guarantee) forces over-share tenants to yield cores back through
//! their normal release path.
//!
//! ```
//! use elastic_core::tenant::{ArbiterMode, TenantArbiter};
//! use numa_sim::CoreId;
//!
//! let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 16);
//! let a = arb.register("olap", 1, None);
//! let b = arb.register("oltp", 1, None);
//! assert_eq!(arb.guarantee(a), 8); // symmetric weights: half each
//! assert!(arb.try_claim(a, CoreId(0)));
//! assert!(!arb.try_claim(b, CoreId(0)), "core 0 is taken");
//! assert!(arb.foreign_mask(b).contains(CoreId(0)));
//! ```

use numa_sim::CoreId;
use os_sim::CoreMask;
use std::cell::RefCell;
use std::rc::Rc;

/// Control steps a growth demand stays "live" for starvation tracking.
const DEMAND_TTL: u32 = 8;
/// Consecutive starved steps before over-share tenants must yield.
const STARVE_AFTER: u32 = 2;

/// Identifies one registered tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant's index into the arbiter's registration order.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// How contention between tenants is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ArbiterMode {
    /// Weights are strict priorities: the highest-priority demanding
    /// tenant is entitled to every core above the one-core floor the
    /// others keep.
    Priority,
    /// Weighted proportional shares: tenant *i* is guaranteed
    /// `ntotal · wᵢ / Σw` cores (at least one), and may exceed its share
    /// only while no other tenant is starved.
    #[default]
    FairShare,
    /// Like fair share, but each tenant's registered core budget is a
    /// *hard ceiling* it can never grow past, idle machine or not.
    BudgetCapped,
}

impl ArbiterMode {
    /// All modes, in CLI listing order.
    pub const ALL: [ArbiterMode; 3] = [
        ArbiterMode::Priority,
        ArbiterMode::FairShare,
        ArbiterMode::BudgetCapped,
    ];

    /// The canonical name (parseable back via `TryFrom<&str>`).
    pub fn name(self) -> &'static str {
        match self {
            ArbiterMode::Priority => "priority",
            ArbiterMode::FairShare => "fairshare",
            ArbiterMode::BudgetCapped => "budget",
        }
    }
}

impl std::fmt::Display for ArbiterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl TryFrom<&str> for ArbiterMode {
    type Error = String;

    fn try_from(name: &str) -> Result<Self, Self::Error> {
        ArbiterMode::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ArbiterMode::ALL.iter().map(|m| m.name()).collect();
                format!(
                    "unknown arbiter mode {name:?} (valid: {})",
                    valid.join(", ")
                )
            })
    }
}

/// Per-tenant arbitration state.
#[derive(Clone, Debug)]
struct TenantState {
    name: String,
    /// Fair-share weight, or priority rank (higher wins) in
    /// [`ArbiterMode::Priority`].
    weight: u32,
    /// Hard core ceiling in [`ArbiterMode::BudgetCapped`] (ignored by
    /// the other modes; `None` = machine size).
    budget: Option<u32>,
    /// Cores this tenant currently owns.
    owned: CoreMask,
    /// Steps the last growth demand stays live.
    demand_ttl: u32,
    /// Consecutive steps spent demanding while below the guarantee.
    starved_streak: u32,
}

/// Resolves core contention between tenant mechanisms. See the
/// [module docs](self) for the arbitration rules.
#[derive(Clone, Debug)]
pub struct TenantArbiter {
    mode: ArbiterMode,
    ntotal: u32,
    tenants: Vec<TenantState>,
    /// Growth attempts denied (ceiling or contention).
    pub denials: u64,
    /// Forced releases of over-share tenants toward a starved one.
    pub yields: u64,
}

/// The arbiter as shared by the tenant mechanisms of one simulation
/// (the stack is single-threaded, like the rest of the simulator).
pub type SharedArbiter = Rc<RefCell<TenantArbiter>>;

impl TenantArbiter {
    /// An arbiter for a machine of `ntotal` cores.
    pub fn new(mode: ArbiterMode, ntotal: u32) -> Self {
        assert!(ntotal >= 1, "machine must have cores");
        TenantArbiter {
            mode,
            ntotal,
            tenants: Vec::new(),
            denials: 0,
            yields: 0,
        }
    }

    /// Wraps a fresh arbiter for sharing between mechanisms.
    pub fn shared(mode: ArbiterMode, ntotal: u32) -> SharedArbiter {
        Rc::new(RefCell::new(Self::new(mode, ntotal)))
    }

    /// Registers a tenant; `weight` is its fair-share weight (or
    /// priority rank), `budget` its hard core ceiling under
    /// [`ArbiterMode::BudgetCapped`].
    pub fn register(
        &mut self,
        name: impl Into<String>,
        weight: u32,
        budget: Option<u32>,
    ) -> TenantId {
        assert!(weight >= 1, "weight must be positive");
        assert!(
            self.tenants.len() < self.ntotal as usize,
            "more tenants than cores"
        );
        self.tenants.push(TenantState {
            name: name.into(),
            weight,
            budget,
            owned: CoreMask::EMPTY,
            demand_ttl: 0,
            starved_streak: 0,
        });
        TenantId(self.tenants.len() as u32 - 1)
    }

    /// Number of registered tenants.
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's registered name.
    pub fn name(&self, t: TenantId) -> &str {
        &self.tenants[t.idx()].name
    }

    /// The arbitration mode.
    pub fn mode(&self) -> ArbiterMode {
        self.mode
    }

    /// Cores the tenant currently owns.
    pub fn owned(&self, t: TenantId) -> CoreMask {
        self.tenants[t.idx()].owned
    }

    /// Cores owned by *other* tenants — the mask a tenant's placement
    /// policy must treat as unavailable
    /// ([`ModeCtx::barred`](crate::ModeCtx::barred)).
    pub fn foreign_mask(&self, t: TenantId) -> CoreMask {
        self.tenants
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != t.idx())
            .fold(CoreMask::EMPTY, |acc, (_, s)| acc.or(s.owned))
    }

    /// Cores owned by nobody.
    pub fn free_cores(&self) -> u32 {
        let owned: usize = self.tenants.iter().map(|s| s.owned.count()).sum();
        self.ntotal.saturating_sub(owned as u32)
    }

    fn demanding(&self, i: usize) -> bool {
        self.tenants[i].demand_ttl > 0
    }

    /// The tenant's guaranteed core count under the current mode and
    /// demand pattern: the share it may always insist on, forcing
    /// over-share tenants to yield.
    pub fn guarantee(&self, t: TenantId) -> u32 {
        match self.mode {
            ArbiterMode::FairShare => self.fair_share(t.idx()),
            ArbiterMode::BudgetCapped => self.fair_share(t.idx()).min(self.ceiling(t)),
            ArbiterMode::Priority => self.priority_guarantees()[t.idx()],
        }
    }

    /// The hard core ceiling the tenant may never grow past.
    pub fn ceiling(&self, t: TenantId) -> u32 {
        match self.mode {
            ArbiterMode::BudgetCapped => self.tenants[t.idx()]
                .budget
                .unwrap_or(self.ntotal)
                .clamp(1, self.ntotal),
            ArbiterMode::Priority | ArbiterMode::FairShare => self.ntotal,
        }
    }

    /// `ntotal · wᵢ / Σw`, floored, at least one core.
    fn fair_share(&self, i: usize) -> u32 {
        let total: u64 = self.tenants.iter().map(|s| s.weight as u64).sum();
        fair_guarantee(self.ntotal, self.tenants[i].weight, total)
    }

    /// Priority-mode guarantees: tenants keep a one-core floor; the
    /// remaining cores go to tenants in priority order — a *demanding*
    /// tenant soaks up everything still available, a quiet one is
    /// guaranteed only what it already owns.
    fn priority_guarantees(&self) -> Vec<u32> {
        let n = self.tenants.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Higher weight first; ties broken by registration order.
        order.sort_by_key(|&i| (std::cmp::Reverse(self.tenants[i].weight), i));
        let mut remaining = self.ntotal.saturating_sub(n as u32);
        let mut g = vec![1u32; n];
        for &i in &order {
            let owned = self.tenants[i].owned.count() as u32;
            let want = if self.demanding(i) {
                remaining
            } else {
                owned.saturating_sub(1).min(remaining)
            };
            g[i] = 1 + want;
            remaining -= want;
        }
        g
    }

    /// Whether any *other* tenant has been starved long enough to force
    /// over-share tenants to yield.
    fn someone_starved(&self, except: usize) -> bool {
        self.tenants
            .iter()
            .enumerate()
            .any(|(i, s)| i != except && s.starved_streak >= STARVE_AFTER)
    }

    /// Per-control-step bookkeeping, fed by the tenant's mechanism:
    /// `wants_grow` is whether the PrT net classified Overload this step
    /// (post-shaping, so an SLA-damped tenant does not read as
    /// demanding).
    pub fn note(&mut self, t: TenantId, wants_grow: bool) {
        let guarantee = self.guarantee(t);
        let s = &mut self.tenants[t.idx()];
        if wants_grow {
            s.demand_ttl = DEMAND_TTL;
        } else {
            s.demand_ttl = s.demand_ttl.saturating_sub(1);
        }
        let starved = s.demand_ttl > 0 && (s.owned.count() as u32) < guarantee;
        if starved {
            s.starved_streak += 1;
        } else {
            s.starved_streak = 0;
        }
    }

    /// Claims `core` for the tenant. Fails (and counts a denial) when the
    /// core is owned by another tenant, the claim would cross the
    /// tenant's ceiling, or it would grow past the guarantee while
    /// another tenant is starved.
    pub fn try_claim(&mut self, t: TenantId, core: CoreId) -> bool {
        if self.foreign_mask(t).contains(core) {
            self.denials += 1;
            return false;
        }
        let after = self.tenants[t.idx()].owned.count() as u32 + 1;
        if after > self.ceiling(t) {
            self.denials += 1;
            return false;
        }
        if after > self.guarantee(t) && self.someone_starved(t.idx()) {
            self.denials += 1;
            return false;
        }
        self.tenants[t.idx()].owned.insert(core);
        true
    }

    /// Claims a core during mechanism install, bypassing the contention
    /// checks (the initial allocation is below any sane guarantee).
    /// Panics if the core is already owned.
    pub fn claim_initial(&mut self, t: TenantId, core: CoreId) {
        assert!(
            !self.foreign_mask(t).contains(core),
            "initial core {core:?} already owned by another tenant"
        );
        self.tenants[t.idx()].owned.insert(core);
    }

    /// Returns `core` to the free pool.
    pub fn release(&mut self, t: TenantId, core: CoreId) {
        self.tenants[t.idx()].owned.remove(core);
    }

    /// Whether the tenant must shed a core this step: it sits above its
    /// guarantee, the machine has no free cores, and another tenant is
    /// starving below *its* guarantee. A pure predicate — the caller
    /// counts a yield (bumping [`TenantArbiter::yields`]) only when a
    /// core is actually shed.
    pub fn must_yield(&self, t: TenantId) -> bool {
        if self.free_cores() > 0 {
            return false;
        }
        let over = self.tenants[t.idx()].owned.count() as u32 > self.guarantee(t);
        over && self.someone_starved(t.idx())
    }
}

/// The fair-share guarantee arithmetic — `ntotal · weight / Σweights`,
/// floored, at least one core. Exposed so external checks (the
/// `mt_fairshare` convergence gate) validate against exactly what the
/// arbiter grants rather than re-deriving the rounding rule.
pub fn fair_guarantee(ntotal: u32, weight: u32, total_weight: u64) -> u32 {
    if total_weight == 0 {
        return 1;
    }
    ((ntotal as u64 * weight as u64 / total_weight) as u32).max(1)
}

/// A tenant mechanism's handle on the shared arbiter.
#[derive(Clone)]
pub struct TenantBinding {
    /// The arbiter shared by every tenant of the simulation.
    pub arbiter: SharedArbiter,
    /// This mechanism's tenant.
    pub tenant: TenantId,
}

impl TenantBinding {
    /// Binds `tenant` to `arbiter`.
    pub fn new(arbiter: SharedArbiter, tenant: TenantId) -> Self {
        TenantBinding { arbiter, tenant }
    }
}

impl std::fmt::Debug for TenantBinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantBinding")
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two(mode: ArbiterMode) -> (TenantArbiter, TenantId, TenantId) {
        let mut arb = TenantArbiter::new(mode, 16);
        let a = arb.register("a", 1, None);
        let b = arb.register("b", 1, None);
        (arb, a, b)
    }

    #[test]
    fn mode_names_round_trip() {
        for m in ArbiterMode::ALL {
            assert_eq!(ArbiterMode::try_from(m.name()), Ok(m));
        }
        let err = ArbiterMode::try_from("magic").unwrap_err();
        assert!(err.contains("fairshare"), "{err}");
    }

    #[test]
    fn ownership_is_exclusive() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        assert!(arb.try_claim(a, CoreId(3)));
        assert!(!arb.try_claim(b, CoreId(3)), "double claim must fail");
        assert_eq!(arb.denials, 1);
        assert!(arb.foreign_mask(b).contains(CoreId(3)));
        assert!(!arb.foreign_mask(a).contains(CoreId(3)));
        arb.release(a, CoreId(3));
        assert!(arb.try_claim(b, CoreId(3)), "released core is claimable");
        assert_eq!(arb.free_cores(), 15);
    }

    #[test]
    fn fair_share_guarantees_split_by_weight() {
        let mut arb = TenantArbiter::new(ArbiterMode::FairShare, 16);
        let a = arb.register("heavy", 3, None);
        let b = arb.register("light", 1, None);
        assert_eq!(arb.guarantee(a), 12);
        assert_eq!(arb.guarantee(b), 4);
        assert_eq!(arb.ceiling(a), 16, "fair share has no hard ceiling");
    }

    #[test]
    fn overshoot_allowed_until_someone_starves() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        // Tenant a grabs 10 cores on an otherwise idle machine: fine.
        for c in 0..10 {
            assert!(arb.try_claim(a, CoreId(c)), "core {c} uncontended");
        }
        // Tenant b starts demanding below its guarantee of 8.
        arb.note(b, true);
        arb.note(b, true);
        // Over-guarantee growth for a is now denied...
        assert!(!arb.try_claim(a, CoreId(10)));
        // ...but b may still claim free cores.
        assert!(arb.try_claim(b, CoreId(10)));
    }

    #[test]
    fn yield_fires_only_when_machine_is_full_and_peer_starves() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        for c in 0..14 {
            assert!(arb.try_claim(a, CoreId(c)));
        }
        assert!(arb.try_claim(b, CoreId(14)));
        assert!(arb.try_claim(b, CoreId(15)));
        // Machine full, but b not demanding: no yield.
        assert!(!arb.must_yield(a));
        arb.note(b, true);
        arb.note(b, true);
        assert!(arb.must_yield(a), "starved peer forces the yield");
        // b itself is below guarantee: never asked to yield.
        assert!(!arb.must_yield(b));
    }

    #[test]
    fn satisfied_tenant_stops_starving() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        for c in 0..8 {
            assert!(arb.try_claim(b, CoreId(c)));
        }
        arb.note(b, true);
        arb.note(b, true);
        assert_eq!(
            arb.guarantee(b),
            8,
            "b sits exactly at its guarantee — not starved"
        );
        for c in 8..16 {
            assert!(arb.try_claim(a, CoreId(c)), "a can take its own half");
        }
        assert!(!arb.must_yield(a));
    }

    #[test]
    fn budget_mode_enforces_hard_ceiling() {
        let mut arb = TenantArbiter::new(ArbiterMode::BudgetCapped, 16);
        let a = arb.register("capped", 1, Some(3));
        assert_eq!(arb.ceiling(a), 3);
        for c in 0..3 {
            assert!(arb.try_claim(a, CoreId(c)));
        }
        assert!(
            !arb.try_claim(a, CoreId(3)),
            "budget is a ceiling even on an idle machine"
        );
        assert_eq!(arb.denials, 1);
    }

    #[test]
    fn priority_mode_squeezes_the_low_tenant() {
        let mut arb = TenantArbiter::new(ArbiterMode::Priority, 16);
        let hi = arb.register("prod", 2, None);
        let lo = arb.register("batch", 1, None);
        // Both demanding: the high-priority tenant is guaranteed
        // everything above the low tenant's one-core floor.
        arb.note(hi, true);
        arb.note(lo, true);
        assert_eq!(arb.guarantee(hi), 15);
        assert_eq!(arb.guarantee(lo), 1);
        // Quiet high-priority tenant holding 4 cores keeps them, the
        // demanding low tenant may have the rest.
        for c in 0..4 {
            assert!(arb.try_claim(hi, CoreId(c)));
        }
        for _ in 0..DEMAND_TTL + 1 {
            arb.note(hi, false);
        }
        assert_eq!(arb.guarantee(hi), 4);
        assert_eq!(arb.guarantee(lo), 12);
    }

    #[test]
    fn claim_initial_bypasses_contention() {
        let (mut arb, a, b) = two(ArbiterMode::BudgetCapped);
        arb.note(b, true);
        arb.note(b, true);
        arb.claim_initial(a, CoreId(0));
        assert!(arb.owned(a).contains(CoreId(0)));
        assert_eq!(arb.denials, 0);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn claim_initial_panics_on_double_ownership() {
        let (mut arb, a, b) = two(ArbiterMode::FairShare);
        arb.claim_initial(a, CoreId(0));
        arb.claim_initial(b, CoreId(0));
    }
}
