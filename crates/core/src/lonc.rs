//! The Local Optimum Number of Cores (§IV-A, Equation 1).
//!
//! > ∀w ∃ nalloc | (thmin < u < thmax) ∧ p(nalloc) ≥ p(ntotal)
//!
//! The LONC is reached when the per-core load of the allocated set sits
//! inside the stable band. [`analyze`] observes the mechanism's
//! transition log and reports (as a [`LoncReport`]) whether/when the
//! allocation converged and to how many cores — the quantity Fig. 7
//! visualises.

use crate::mechanism::TransitionEvent;
use emca_metrics::SimTime;
use prt_petrinet::{StateKind, Thresholds};

/// Checks the stable-band predicate of Equation 1.
pub fn in_stable_band(u: i64, thresholds: Thresholds) -> bool {
    u > thresholds.thmin && u < thresholds.thmax
}

/// Convergence summary derived from a transition log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoncReport {
    /// The core count held during the longest stable streak.
    pub lonc: u32,
    /// When that streak started.
    pub reached_at: SimTime,
    /// Length of the streak in control steps.
    pub streak: usize,
    /// Total allocations performed before the streak.
    pub allocations_before: usize,
}

/// Scans a transition log for the longest stable run.
pub fn analyze(events: &[TransitionEvent]) -> Option<LoncReport> {
    let mut best: Option<LoncReport> = None;
    let mut i = 0usize;
    while i < events.len() {
        if events[i].state == StateKind::Stable {
            let cur_start = i;
            let nalloc = events[i].nalloc;
            let mut j = i;
            while j < events.len()
                && events[j].state == StateKind::Stable
                && events[j].nalloc == nalloc
            {
                j += 1;
            }
            let streak = j - cur_start;
            if best.as_ref().is_none_or(|b| streak > b.streak) {
                let allocations_before = events[..cur_start]
                    .iter()
                    .filter(|e| e.action == prt_petrinet::AllocAction::Allocate)
                    .count();
                best = Some(LoncReport {
                    lonc: nalloc,
                    reached_at: events[cur_start].at,
                    streak,
                    allocations_before,
                });
            }
            i = j;
        } else {
            i += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use prt_petrinet::AllocAction;

    fn ev(ms: u64, state: StateKind, action: AllocAction, nalloc: u32) -> TransitionEvent {
        TransitionEvent {
            at: SimTime::from_millis(ms),
            label: String::new(),
            state,
            action,
            u: 50,
            cpu_load_pct: 50.0,
            nalloc,
        }
    }

    #[test]
    fn band_predicate() {
        let th = Thresholds::cpu_load_default();
        assert!(in_stable_band(40, th));
        assert!(!in_stable_band(10, th));
        assert!(!in_stable_band(70, th));
        assert!(in_stable_band(11, th));
        assert!(in_stable_band(69, th));
    }

    #[test]
    fn analyze_finds_longest_streak() {
        use AllocAction::{Allocate, Hold};
        use StateKind::{Overload, Stable};
        let events = vec![
            ev(0, Overload, Allocate, 2),
            ev(10, Overload, Allocate, 3),
            ev(20, Stable, Hold, 3),
            ev(30, Stable, Hold, 3),
            ev(40, Overload, Allocate, 4),
            ev(50, Stable, Hold, 4),
            ev(60, Stable, Hold, 4),
            ev(70, Stable, Hold, 4),
        ];
        let report = analyze(&events).expect("stable streaks exist");
        assert_eq!(report.lonc, 4);
        assert_eq!(report.streak, 3);
        assert_eq!(report.reached_at, SimTime::from_millis(50));
        assert_eq!(report.allocations_before, 3);
    }

    #[test]
    fn analyze_empty_and_unstable() {
        assert_eq!(analyze(&[]), None);
        let events = vec![ev(0, StateKind::Overload, AllocAction::Allocate, 2)];
        assert_eq!(analyze(&events), None);
    }

    #[test]
    fn nalloc_change_breaks_streak() {
        use AllocAction::Hold;
        use StateKind::Stable;
        let events = vec![
            ev(0, Stable, Hold, 3),
            ev(10, Stable, Hold, 4), // different nalloc: new streak
            ev(20, Stable, Hold, 4),
        ];
        let report = analyze(&events).unwrap();
        assert_eq!(report.lonc, 4);
        assert_eq!(report.streak, 2);
    }
}
