//! Pool-level elastic control for the real-thread backend.
//!
//! [`PoolController`] is the mechanism's rule–condition–action pipeline
//! re-targeted at an OS thread pool: the same PrT net
//! ([`ElasticNet`]) consumes a measured CPU
//! load and emits allocate/release/hold actions, but the actuation is
//! *park/unpark workers* instead of editing a simulated cpuset. The
//! simulated mechanism's saturation guard (HT/IMC memory-traffic ratio)
//! has no real-hardware counterpart in this workspace — there are no
//! performance-counter syscalls available — so the controller runs on
//! CPU load alone; `docs/ARCHITECTURE.md` discusses the gap.
//!
//! Two behaviors carry over from [`ElasticMechanism`](crate::mechanism):
//!
//! - **AIMD cadence**: after an allocate/release the controller asks to
//!   be polled again at `min_interval`; every hold doubles the interval
//!   back up to the configured maximum, so a stable system is probed
//!   rarely and a shifting one tracked closely.
//! - **Release hysteresis**: a single under-threshold sample does not
//!   release a core — the load must stay under `thmin` for
//!   `release_hysteresis` consecutive observations. Real thread pools
//!   see much noisier load than the simulator (a sample can land between
//!   task completions), and one noisy dip must not trigger a shrink.

use crate::mechanism::TransitionEvent;
use emca_metrics::{SimDuration, SimTime};
use prt_petrinet::{AllocAction, ElasticNet, StateKind, Thresholds};

/// Configuration for a [`PoolController`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Idle / overload CPU-load thresholds (percent).
    pub thresholds: Thresholds,
    /// Pool capacity (total workers the controller may unpark).
    pub ntotal: u32,
    /// Workers unparked at start.
    pub initial: u32,
    /// Longest poll interval (AIMD upper bound).
    pub interval: SimDuration,
    /// Shortest poll interval, used right after a transition fires.
    pub min_interval: SimDuration,
    /// Consecutive under-`thmin` observations required before a release.
    pub release_hysteresis: u32,
}

impl PoolConfig {
    /// CPU-load defaults sized for a 16-worker pool.
    pub fn cpu_load(ntotal: u32) -> Self {
        PoolConfig {
            thresholds: Thresholds::cpu_load_default(),
            ntotal,
            initial: 1,
            interval: SimDuration::from_millis(50),
            min_interval: SimDuration::from_micros(200),
            release_hysteresis: 2,
        }
    }
}

/// One control decision: how many workers should be unparked now.
#[derive(Clone, Copy, Debug)]
pub struct PoolDecision {
    /// Target unparked-worker count.
    pub nalloc: u32,
    /// What the net did this step.
    pub action: AllocAction,
    /// The net's state after the step.
    pub state: StateKind,
}

/// Elastic controller for a real worker pool.
#[derive(Clone, Debug)]
pub struct PoolController {
    cfg: PoolConfig,
    net: ElasticNet,
    idle_streak: u32,
    cur_interval: SimDuration,
    /// Requests queued in front of the engine (serving layer); 0 in
    /// closed-loop runs. Fed by [`PoolController::note_queue_depth`].
    queue_depth: u64,
    /// Every fired transition, for the harness's `transitions` output.
    pub events: Vec<TransitionEvent>,
}

impl PoolController {
    /// Builds the controller with its PrT net at `cfg.initial` workers.
    pub fn new(cfg: PoolConfig) -> Self {
        cfg.thresholds.validate();
        let initial = cfg.initial.clamp(1, cfg.ntotal);
        PoolController {
            net: ElasticNet::new(cfg.thresholds, cfg.ntotal, initial),
            idle_streak: 0,
            cur_interval: cfg.min_interval,
            queue_depth: 0,
            events: Vec::new(),
            cfg,
        }
    }

    /// Reports the serving layer's current admission-queue depth; the
    /// next [`observe`](PoolController::observe) boosts the load signal
    /// by the queued-requests-per-worker ratio, so backlog registers as
    /// demand even while the admitted queries leave workers idle.
    /// Closed-loop runs never call this.
    pub fn note_queue_depth(&mut self, depth: u64) {
        self.queue_depth = depth;
    }

    /// Feeds one CPU-load observation (percent of the *active* workers'
    /// capacity) and returns the new target allocation.
    pub fn observe(&mut self, now: SimTime, u_pct: f64) -> PoolDecision {
        let mut u = u_pct.round().clamp(0.0, 100.0) as i64;
        if self.queue_depth > 0 {
            let boost = (100 * self.queue_depth) / self.net.nalloc().max(1) as u64;
            u = (u + boost as i64).min(100);
        }
        if u <= self.cfg.thresholds.thmin {
            self.idle_streak += 1;
            if self.idle_streak < self.cfg.release_hysteresis {
                // Suppress the release: report a mid-band load so the
                // net holds instead.
                u = (self.cfg.thresholds.thmin + self.cfg.thresholds.thmax) / 2;
            }
        } else {
            self.idle_streak = 0;
        }
        let report = self.net.step(u);
        self.cur_interval = match report.action {
            AllocAction::Allocate | AllocAction::Release => self.cfg.min_interval,
            AllocAction::Hold => (self.cur_interval + self.cur_interval)
                .min(self.cfg.interval)
                .max(self.cfg.min_interval),
        };
        if !report.fired.is_empty() {
            self.events.push(TransitionEvent {
                at: now,
                label: report.label.clone(),
                state: report.state,
                action: report.action,
                u,
                cpu_load_pct: u_pct,
                nalloc: report.nalloc,
            });
        }
        PoolDecision {
            nalloc: report.nalloc,
            action: report.action,
            state: report.state,
        }
    }

    /// Forces the net's allocation to `nalloc` — used when the actuation
    /// could not follow a decision (e.g. a multi-tenant arbiter denied
    /// the claim), so net state and real pool state stay in step.
    pub fn resync(&mut self, nalloc: u32) {
        self.net.set_nalloc(nalloc.clamp(1, self.cfg.ntotal));
    }

    /// Reports how many workers are actually allocatable right now
    /// (`live` excludes fault-killed, not-yet-recovered workers). A
    /// target above the live width is clamped down so grow decisions
    /// never point the actuation at a dead worker; recovery raises
    /// `live` again and the controller is free to re-grow.
    pub fn note_capacity(&mut self, live: u32) {
        let cap = live.clamp(1, self.cfg.ntotal);
        if self.net.nalloc() > cap {
            self.net.set_nalloc(cap);
        }
    }

    /// Current target allocation.
    pub fn nalloc(&self) -> u32 {
        self.net.nalloc()
    }

    /// How long the caller should wait before the next [`observe`]
    /// (AIMD: short after a transition, long while stable).
    ///
    /// [`observe`]: PoolController::observe
    pub fn interval(&self) -> SimDuration {
        self.cur_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> PoolController {
        PoolController::new(PoolConfig::cpu_load(16))
    }

    fn drive(c: &mut PoolController, u: f64, steps: usize) -> u32 {
        let mut n = c.nalloc();
        for i in 0..steps {
            n = c.observe(SimTime::from_millis(i as u64), u).nalloc;
        }
        n
    }

    #[test]
    fn overload_grows_to_capacity() {
        let mut c = controller();
        assert_eq!(drive(&mut c, 95.0, 40), 16);
        assert!(!c.events.is_empty());
        assert_eq!(c.events.last().unwrap().nalloc, 16);
    }

    #[test]
    fn idle_shrinks_but_only_after_hysteresis() {
        let mut c = controller();
        drive(&mut c, 95.0, 20);
        let grown = c.nalloc();
        assert!(grown > 1);
        // One idle sample is noise: no release yet.
        let d = c.observe(SimTime::from_secs(1), 2.0);
        assert_eq!(d.nalloc, grown);
        // Sustained idleness releases.
        assert_eq!(drive(&mut c, 2.0, 40), 1);
    }

    #[test]
    fn stable_band_holds_and_backs_off() {
        let mut c = controller();
        drive(&mut c, 95.0, 4);
        let before = c.nalloc();
        let d = c.observe(SimTime::from_secs(2), 40.0);
        assert_eq!(d.nalloc, before);
        assert!(matches!(d.action, AllocAction::Hold));
        let short = c.interval();
        for i in 0..16 {
            c.observe(SimTime::from_secs(3 + i), 40.0);
        }
        assert!(c.interval() > short, "holds must back the cadence off");
        assert_eq!(c.interval(), SimDuration::from_millis(50));
    }

    #[test]
    fn queue_backlog_grows_an_idle_pool() {
        let mut c = controller();
        // Low measured load, but a deep admission queue: the backlog is
        // demand and must grow the pool despite the idle CPU signal.
        c.note_queue_depth(32);
        let mut n = c.nalloc();
        for i in 0..40 {
            c.note_queue_depth(32);
            n = c.observe(SimTime::from_millis(i), 5.0).nalloc;
        }
        assert_eq!(n, 16, "queue pressure must register as demand");
        // Backlog drained: the idle signal shrinks the pool again.
        c.note_queue_depth(0);
        assert_eq!(drive(&mut c, 2.0, 40), 1);
    }

    #[test]
    fn dead_capacity_clamps_and_recovery_regrows() {
        let mut c = controller();
        drive(&mut c, 95.0, 40);
        assert_eq!(c.nalloc(), 16);
        // 4 workers die: the target drops to the live width.
        c.note_capacity(12);
        assert_eq!(c.nalloc(), 12);
        // Recovery restores capacity; sustained load re-grows.
        c.note_capacity(16);
        assert_eq!(c.nalloc(), 12, "note_capacity never grows by itself");
        assert_eq!(drive(&mut c, 95.0, 40), 16);
        // A fully dead pool still reports one allocatable slot (the
        // controller cannot target zero workers).
        c.note_capacity(0);
        assert_eq!(c.nalloc(), 1);
    }

    #[test]
    fn resync_tracks_denied_actuation() {
        let mut c = controller();
        drive(&mut c, 95.0, 10);
        assert!(c.nalloc() > 3);
        c.resync(3);
        assert_eq!(c.nalloc(), 3);
    }
}
