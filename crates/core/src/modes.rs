//! The multi-core allocation modes (§IV-B).
//!
//! All three modes answer the same two questions: *which core do we hand
//! to the OS next* when the PetriNet decides to allocate, and *which do
//! we take back* when it decides to release.
//!
//! - [`DenseMode`]: `core(i, j) = d·i + j` iterating `j` innermost — fill
//!   a node before moving to the next (Fig. 12b);
//! - [`SparseMode`]: iterate `i` innermost — one core per node round-robin
//!   (Fig. 12a);
//! - [`AdaptiveMode`]: consult the page-count priority queue — allocate
//!   on the node with the most resident DBMS pages, release on the node
//!   with the fewest (§IV-B2).

use crate::priority_queue::NodePriorityQueue;
use numa_sim::{CoreId, Topology};
use os_sim::CoreMask;

/// Context handed to a mode when it must pick a core.
#[derive(Clone, Copy)]
pub struct ModeCtx<'a> {
    /// Machine shape.
    pub topology: &'a Topology,
    /// Cores currently handed to the OS.
    pub current: CoreMask,
    /// Cores this group may not allocate — owned by other tenants under
    /// a [`TenantArbiter`](crate::tenant::TenantArbiter). Empty in
    /// single-tenant runs. Placement must skip them; release ignores
    /// them (a group only ever releases its own cores).
    pub barred: CoreMask,
    /// Fresh pages-per-node statistics of the DBMS address space.
    pub pages_per_node: &'a [u64],
    /// Smoothed memory-controller utilisation per node (0 = idle,
    /// ≥ 1 = saturated). Empty when the caller has no monitor (tests,
    /// static installs); modes must treat missing data as "no pressure".
    pub mc_util_per_node: &'a [f64],
}

impl ModeCtx<'_> {
    /// Whether `core` is available for allocation: neither already in
    /// the group's mask nor barred by another tenant.
    pub fn is_free(&self, core: CoreId) -> bool {
        !self.current.contains(core) && !self.barred.contains(core)
    }
}

/// A core allocation policy.
pub trait AllocationMode {
    /// Short name (`"dense"`, `"sparse"`, `"adaptive"`).
    fn name(&self) -> &'static str;

    /// The next core to add (must not already be in `current`); `None`
    /// when every core is allocated.
    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId>;

    /// The core to release (must be in `current`); `None` when only one
    /// core remains (the mechanism never drops below one).
    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId>;
}

/// Fill each node before moving on: allocation order 0,1,2,3, 4,5,...
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseMode;

impl AllocationMode for DenseMode {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        let d = ctx.topology.cores_per_node();
        (0..ctx.topology.n_nodes())
            .flat_map(|i| (0..d).map(move |j| (i, j)))
            .map(|(i, j)| CoreId((i * d + j) as u16))
            .find(|&c| ctx.is_free(c))
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        if ctx.current.count() <= 1 {
            return None;
        }
        // Reverse allocation order: the most recently addable core goes
        // first.
        ctx.current.iter().max_by_key(|c| c.idx())
    }
}

/// One core per node round-robin: allocation order 0,4,8,12, 1,5,...
#[derive(Clone, Copy, Debug, Default)]
pub struct SparseMode;

impl AllocationMode for SparseMode {
    fn name(&self) -> &'static str {
        "sparse"
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        let d = ctx.topology.cores_per_node();
        let n = ctx.topology.n_nodes();
        (0..d)
            .flat_map(|j| (0..n).map(move |i| (i, j)))
            .map(|(i, j)| CoreId((i * d + j) as u16))
            .find(|&c| ctx.is_free(c))
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        if ctx.current.count() <= 1 {
            return None;
        }
        // Reverse of the sparse order: highest (j, i) pair allocated.
        let d = ctx.topology.cores_per_node();
        ctx.current
            .iter()
            .max_by_key(|c| (c.idx() % d, c.idx() / d))
    }
}

/// Page-priority-driven allocation (the paper's contribution), extended
/// with memory-controller headroom: pages say *where the data lives*,
/// the per-node MC utilisation says *whether another core there can
/// still reach it*. The queue ranks nodes by page count, but a node
/// whose controller is saturated is deprioritised — an extra core on a
/// bandwidth-starved node adds no throughput (Eq. 1 applied per node),
/// while a core on the next-hottest node with headroom does.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveMode {
    queue: NodePriorityQueue,
}

impl AdaptiveMode {
    /// Page-share × headroom score used to pick the allocation target.
    fn score(ctx: &ModeCtx<'_>, node: numa_sim::NodeId) -> f64 {
        let total: u64 = ctx.pages_per_node.iter().sum();
        let pages = *ctx.pages_per_node.get(node.idx()).unwrap_or(&0);
        // With no pages anywhere, fall back to uniform page shares so the
        // headroom term alone decides.
        let share = if total == 0 {
            1.0
        } else {
            pages as f64 / total as f64
        };
        let util = ctx.mc_util_per_node.get(node.idx()).copied().unwrap_or(0.0);
        let headroom = (1.0 - util).max(0.0);
        // The epsilon keeps data-holding nodes preferred among equally
        // saturated candidates instead of degenerating to node order.
        share * (headroom + 0.05)
    }
}

impl AllocationMode for AdaptiveMode {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        // Rank candidate nodes (those with a free core) by score; fall
        // back to the raw page ranking when scores tie at zero.
        let best = ctx
            .topology
            .all_nodes()
            .filter(|&n| ctx.topology.cores_of(n).any(|c| ctx.is_free(c)))
            .max_by(|&a, &b| {
                Self::score(ctx, a)
                    .total_cmp(&Self::score(ctx, b))
                    .then_with(|| {
                        ctx.pages_per_node
                            .get(a.idx())
                            .cmp(&ctx.pages_per_node.get(b.idx()))
                    })
                    // Stable preference for lower node ids on full ties.
                    .then_with(|| b.idx().cmp(&a.idx()))
            });
        let node = best?;
        ctx.topology.cores_of(node).find(|&c| ctx.is_free(c))
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        if ctx.current.count() <= 1 {
            return None;
        }
        self.queue.refresh(ctx.pages_per_node);
        // Lowest-priority node that still holds an allocated core.
        for node in self.queue.ascending() {
            let on_node = ctx.current.on_node(ctx.topology, node);
            if let Some(core) = on_node.iter().max_by_key(|c| c.idx()) {
                return Some(core);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(topo: &'a Topology, current: CoreMask, pages: &'a [u64]) -> ModeCtx<'a> {
        ModeCtx {
            topology: topo,
            current,
            barred: CoreMask::EMPTY,
            pages_per_node: pages,
            mc_util_per_node: &[],
        }
    }

    fn alloc_sequence(mode: &mut dyn AllocationMode, topo: &Topology, pages: &[u64]) -> Vec<u16> {
        let mut mask = CoreMask::EMPTY;
        let mut seq = Vec::new();
        while let Some(c) = mode.next_core(&ctx(topo, mask, pages)) {
            seq.push(c.0);
            mask.insert(c);
        }
        seq
    }

    #[test]
    fn dense_order_matches_fig12b() {
        let topo = Topology::opteron_4x4();
        let seq = alloc_sequence(&mut DenseMode, &topo, &[0; 4]);
        assert_eq!(seq, (0..16).collect::<Vec<u16>>());
    }

    #[test]
    fn sparse_order_matches_fig12a() {
        let topo = Topology::opteron_4x4();
        let seq = alloc_sequence(&mut SparseMode, &topo, &[0; 4]);
        assert_eq!(
            seq,
            vec![0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 10, 14, 3, 7, 11, 15]
        );
    }

    #[test]
    fn dense_release_reverses() {
        let topo = Topology::opteron_4x4();
        let mask = CoreMask::from_cores([CoreId(0), CoreId(1), CoreId(2)]);
        let mut m = DenseMode;
        assert_eq!(m.release_core(&ctx(&topo, mask, &[0; 4])), Some(CoreId(2)));
    }

    #[test]
    fn sparse_release_reverses() {
        let topo = Topology::opteron_4x4();
        // Sparse allocated 0, 4, 8: releasing should drop 8 (latest in
        // sparse order).
        let mask = CoreMask::from_cores([CoreId(0), CoreId(4), CoreId(8)]);
        let mut m = SparseMode;
        assert_eq!(m.release_core(&ctx(&topo, mask, &[0; 4])), Some(CoreId(8)));
    }

    #[test]
    fn adaptive_allocates_on_hottest_node() {
        let topo = Topology::opteron_4x4();
        let mut m = AdaptiveMode::default();
        // Node 2 has the most pages: first allocation goes there.
        let pages = [10, 5, 100, 0];
        let c = m.next_core(&ctx(&topo, CoreMask::EMPTY, &pages)).unwrap();
        assert_eq!(topo.node_of(c), numa_sim::NodeId(2));
        // Node 2 full -> falls back to node 0 (next priority).
        let full2 = CoreMask::from_cores(topo.cores_of(numa_sim::NodeId(2)));
        let c = m.next_core(&ctx(&topo, full2, &pages)).unwrap();
        assert_eq!(topo.node_of(c), numa_sim::NodeId(0));
    }

    #[test]
    fn adaptive_releases_on_coldest_node() {
        let topo = Topology::opteron_4x4();
        let mut m = AdaptiveMode::default();
        let mask = CoreMask::from_cores([CoreId(0), CoreId(4), CoreId(8)]);
        // Node 1 (core 4) has the fewest pages among allocated nodes.
        let pages = [100, 1, 50, 999];
        assert_eq!(m.release_core(&ctx(&topo, mask, &pages)), Some(CoreId(4)));
    }

    #[test]
    fn release_never_drops_last_core() {
        let topo = Topology::opteron_4x4();
        let mask = CoreMask::single(CoreId(3));
        let pages = [0; 4];
        assert_eq!(DenseMode.release_core(&ctx(&topo, mask, &pages)), None);
        assert_eq!(SparseMode.release_core(&ctx(&topo, mask, &pages)), None);
        assert_eq!(
            AdaptiveMode::default().release_core(&ctx(&topo, mask, &pages)),
            None
        );
    }

    #[test]
    fn barred_cores_are_skipped_by_every_mode() {
        let topo = Topology::opteron_4x4();
        // Node 0 entirely barred (another tenant owns it), plus core 4.
        let mut barred = CoreMask::from_cores(topo.cores_of(numa_sim::NodeId(0)));
        barred.insert(CoreId(4));
        let pages = [100u64, 0, 0, 0]; // hottest node is fully barred
        let mk = |current| ModeCtx {
            topology: &topo,
            current,
            barred,
            pages_per_node: &pages,
            mc_util_per_node: &[],
        };
        let c = DenseMode.next_core(&mk(CoreMask::EMPTY)).unwrap();
        assert_eq!(c, CoreId(5), "dense skips node 0 and core 4");
        let c = SparseMode.next_core(&mk(CoreMask::EMPTY)).unwrap();
        assert_eq!(c, CoreId(8), "sparse skips barred 0 and 4");
        let c = AdaptiveMode::default()
            .next_core(&mk(CoreMask::EMPTY))
            .unwrap();
        assert_ne!(
            topo.node_of(c),
            numa_sim::NodeId(0),
            "adaptive cannot allocate on a fully barred node"
        );
        // A fully barred machine has no next core.
        let all_barred = ModeCtx {
            topology: &topo,
            current: CoreMask::EMPTY,
            barred: CoreMask::all(&topo),
            pages_per_node: &pages,
            mc_util_per_node: &[],
        };
        assert_eq!(DenseMode.next_core(&all_barred), None);
    }

    #[test]
    fn full_machine_has_no_next() {
        let topo = Topology::opteron_4x4();
        let all = CoreMask::all(&topo);
        let pages = [1; 4];
        assert_eq!(DenseMode.next_core(&ctx(&topo, all, &pages)), None);
        assert_eq!(SparseMode.next_core(&ctx(&topo, all, &pages)), None);
        assert_eq!(
            AdaptiveMode::default().next_core(&ctx(&topo, all, &pages)),
            None
        );
    }
}
