//! The unified allocation-policy API.
//!
//! [`Policy`] subsumes the original [`AllocationMode`] (*where* to
//! allocate or release a core) **and** the SLA-governor hooks (*whether*
//! to follow the PrT net's verdict at all): every control step the
//! mechanism feeds the policy an [`Observation`] (throughput and resource
//! feedback) and then asks it to [`Policy::decide`] on the net's
//! [`AllocAction`]. Plain placement modes keep the net's verdict and only
//! pick the core; richer policies — the SLA cap ([`SlaCappedPolicy`]) or
//! the throughput hill climber ([`HillClimbPolicy`]) — may veto growth,
//! force a release, or revert a move that did not pay off.
//!
//! Policies are named by the typed [`PolicyId`]; parsing a name returns a
//! proper error ([`UnknownPolicy`]) instead of panicking, so CLIs can
//! print the valid list.
//!
//! ```
//! use elastic_core::{policy_by_name, ModeCtx, Policy, PolicyId};
//! use numa_sim::Topology;
//! use os_sim::CoreMask;
//!
//! let mut policy = policy_by_name("dense").unwrap();
//! let topo = Topology::opteron_4x4();
//! let ctx = ModeCtx {
//!     topology: &topo,
//!     current: CoreMask::EMPTY,
//!     barred: CoreMask::EMPTY,
//!     pages_per_node: &[0; 4],
//!     mc_util_per_node: &[],
//! };
//! let first = policy.next_core(&ctx).expect("an empty machine has room");
//! assert_eq!(first.0, 0, "dense fills node 0 first");
//! assert!(PolicyId::try_from("warp").is_err(), "unknown names are errors");
//! ```

use crate::modes::{AdaptiveMode, AllocationMode, DenseMode, ModeCtx, SparseMode};
use crate::monitor::MonitorSample;
use crate::sla::{SlaGovernor, SlaPolicy};
use emca_metrics::SimDuration;
use numa_sim::CoreId;
use prt_petrinet::{AllocAction, Thresholds};

/// What a policy decided for one control step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Hand this core to the OS (must not already be allocated).
    Grow(CoreId),
    /// Take this core back (must be allocated).
    Shrink(CoreId),
    /// Keep the current allocation.
    Hold,
}

/// Context handed to [`Policy::decide`]: the placement context plus the
/// PrT net's verdict for this step.
pub struct PolicyCtx<'a> {
    /// Placement context (topology, current mask, pages, MC headroom).
    pub mode: ModeCtx<'a>,
    /// The net's verdict (the policy may override it).
    pub action: AllocAction,
}

/// Per-control-step feedback a policy can learn from.
#[derive(Clone, Copy, Debug)]
pub struct Observation<'a> {
    /// The monitor sample driving this step.
    pub sample: &'a MonitorSample,
    /// Queries completed since the previous control step.
    pub completions: u64,
    /// Wall (simulated) time covered since the previous control step.
    pub interval: SimDuration,
    /// Cores allocated going into this step.
    pub nalloc: u32,
    /// Interconnect traffic rate over the window (bytes/s).
    pub ht_rate: f64,
    /// Requests waiting for admission/dispatch in front of the engine
    /// (the serving layer's queue). Always 0 in closed-loop runs, where
    /// demand is only visible through CPU load. An open-loop front door
    /// feeds this via `note_queue_depth` so backlog registers as demand
    /// even while the few admitted queries leave the allocation idle.
    pub queue_depth: u64,
}

impl Observation<'_> {
    /// Completion throughput over the window (queries/s); `None` when the
    /// window is empty.
    pub fn rate(&self) -> Option<f64> {
        let secs = self.interval.as_secs_f64();
        (secs > 0.0).then(|| self.completions as f64 / secs)
    }
}

/// A core-allocation policy: placement (*where*) plus an optional veto
/// over the PrT net's verdict (*whether*).
pub trait Policy {
    /// Short name (`"dense"`, `"sparse"`, `"adaptive"`, `"hillclimb"`).
    fn name(&self) -> &str;

    /// The next core to add (must not already be in `ctx.current`);
    /// `None` when every core is allocated.
    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId>;

    /// The core to release (must be in `ctx.current`); `None` when only
    /// one core remains.
    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId>;

    /// Feedback hook, called once per control step *before*
    /// [`Policy::decide`]. Default: ignore.
    fn observe(&mut self, _obs: &Observation<'_>) {}

    /// Signal-shaping hook, applied to the metric value *before* the
    /// PrT net consumes it (after the mechanism's own Eq. 1 guard and
    /// release hysteresis). This is how a policy talks the net out of a
    /// move instead of fighting its verdict after the fact: damping an
    /// over-`thmax` value into the stable band makes the net classify
    /// Stable (so the control interval backs off and the LONC streak is
    /// visible in the transition log), and forcing `thmin` drives a
    /// release through the normal token path. Default: identity.
    fn shape(&mut self, u: i64, _nalloc: u32, _thresholds: Thresholds) -> i64 {
        u
    }

    /// Notification that a [`Decision::Grow`] returned by
    /// [`Policy::decide`] was denied downstream (a
    /// [`TenantArbiter`](crate::tenant::TenantArbiter) refused the
    /// claim) and the mechanism held instead. Stateful policies must
    /// roll back anything they armed for that growth — the hill
    /// climber drops its in-flight probe, since there is no grown
    /// allocation to judge. Default: ignore.
    fn grow_denied(&mut self, _core: CoreId) {}

    /// Maps the net's verdict to a concrete decision. The default
    /// follows the verdict, delegating placement to
    /// [`Policy::next_core`] / [`Policy::release_core`].
    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Decision {
        match ctx.action {
            AllocAction::Allocate => self
                .next_core(&ctx.mode)
                .map(Decision::Grow)
                .unwrap_or(Decision::Hold),
            AllocAction::Release => self
                .release_core(&ctx.mode)
                .map(Decision::Shrink)
                .unwrap_or(Decision::Hold),
            AllocAction::Hold => Decision::Hold,
        }
    }
}

/// Every plain placement mode is a policy that always follows the net.
impl<M: AllocationMode> Policy for M {
    fn name(&self) -> &str {
        AllocationMode::name(self)
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        AllocationMode::next_core(self, ctx)
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        AllocationMode::release_core(self, ctx)
    }
}

/// Typed policy identifier — the CLI/config surface of [`Policy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyId {
    /// Fill each node before moving on (Fig. 12b).
    Dense,
    /// One core per node round-robin (Fig. 12a).
    Sparse,
    /// Page-priority placement (§IV-B2, the paper's contribution).
    Adaptive,
    /// Adaptive placement plus throughput-feedback hill climbing:
    /// growth that drops the completion rate (scattering) is reverted,
    /// finding the LONC knee without a tuned Eq. 1 guard threshold.
    HillClimb,
}

impl PolicyId {
    /// All selectable policies, in CLI listing order.
    pub const ALL: [PolicyId; 4] = [
        PolicyId::Dense,
        PolicyId::Sparse,
        PolicyId::Adaptive,
        PolicyId::HillClimb,
    ];

    /// The canonical name (parseable back via `TryFrom<&str>`).
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::Dense => "dense",
            PolicyId::Sparse => "sparse",
            PolicyId::Adaptive => "adaptive",
            PolicyId::HillClimb => "hillclimb",
        }
    }

    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn Policy> {
        match self {
            PolicyId::Dense => Box::new(DenseMode),
            PolicyId::Sparse => Box::new(SparseMode),
            PolicyId::Adaptive => Box::new(AdaptiveMode::default()),
            PolicyId::HillClimb => Box::new(HillClimbPolicy::default()),
        }
    }
}

impl std::fmt::Display for PolicyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error for an unrecognised policy name; its `Display` lists the valid
/// names so CLIs can surface it directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPolicy(pub String);

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let valid: Vec<&str> = PolicyId::ALL.iter().map(|p| p.name()).collect();
        write!(
            f,
            "unknown policy {:?} (valid: {})",
            self.0,
            valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

impl TryFrom<&str> for PolicyId {
    type Error = UnknownPolicy;

    fn try_from(name: &str) -> Result<Self, Self::Error> {
        PolicyId::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| UnknownPolicy(name.to_string()))
    }
}

impl std::str::FromStr for PolicyId {
    type Err = UnknownPolicy;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyId::try_from(s)
    }
}

/// Builds a policy by name — the typed replacement for the old
/// panic-on-unknown `mode_by_name`.
pub fn policy_by_name(name: &str) -> Result<Box<dyn Policy>, UnknownPolicy> {
    PolicyId::try_from(name).map(PolicyId::build)
}

/// An in-flight growth probe: the hill climber grew the allocation and
/// is waiting for enough throughput signal to judge the move.
#[derive(Clone, Copy, Debug)]
struct Probe {
    /// Allocation size before the growth (the revert target).
    from: u32,
    /// Completion rate measured before the growth (queries/s).
    base_rate: f64,
    /// Whether the added core sits on the page-hottest node (local
    /// compute over the data — no scattering risk).
    local: bool,
    /// Control steps observed since the growth.
    steps: u32,
    /// Completions accumulated since the growth.
    completions: u64,
    /// Simulated time accumulated since the growth.
    elapsed: SimDuration,
}

/// A proven-unhelpful allocation size: the climber will not grow back to
/// it until the entry ages out (the workload may have changed).
#[derive(Clone, Copy, Debug)]
struct Ceiling {
    /// The allocation size that did not help.
    at: u32,
    /// Control steps since the revert.
    age: u32,
}

/// Throughput-feedback hill climbing over the adaptive placement
/// (the ROADMAP's hill-climbing LONC): every growth is a *probe* — the
/// climber records the completion rate before the move, lets the system
/// settle, and reverts the growth if the rate dropped (the scattering
/// signature; see [`HillClimbPolicy`]'s `growth_helped` for why a flat
/// rate keeps the core). A reverted size becomes a temporary ceiling so
/// the net's Overload signal cannot immediately re-grow into it. This
/// finds the knee of the throughput-vs-cores curve (Eq. 1's local
/// optimum) from feedback alone, without a tuned memory-saturation
/// threshold.
#[derive(Clone, Debug)]
pub struct HillClimbPolicy {
    placer: AdaptiveMode,
    /// Smoothed completion rate at the current allocation (queries/s).
    rate: Option<f64>,
    probe: Option<Probe>,
    ceiling: Option<Ceiling>,
    /// Minimum control steps before a probe may be judged.
    settle_steps: u32,
    /// Expected completions (at the base rate) required to judge.
    judge_expected: f64,
    /// Hard cap on probe length (control steps).
    max_probe_steps: u32,
    /// Relative rate improvement that unconditionally keeps a growth.
    min_gain: f64,
    /// Relative rate drop that marks a growth as harmful (reverted).
    max_loss: f64,
    /// Control steps a ceiling entry stays fresh.
    ceiling_ttl: u32,
}

impl Default for HillClimbPolicy {
    fn default() -> Self {
        HillClimbPolicy {
            placer: AdaptiveMode::default(),
            rate: None,
            probe: None,
            ceiling: None,
            settle_steps: 2,
            judge_expected: 4.0,
            max_probe_steps: 48,
            min_gain: 0.02,
            max_loss: 0.02,
            ceiling_ttl: 64,
        }
    }
}

impl HillClimbPolicy {
    /// Whether a probe has gathered enough signal to be judged.
    fn ripe(&self, probe: &Probe) -> bool {
        if probe.steps < self.settle_steps {
            return false;
        }
        if probe.base_rate <= 0.0 || probe.steps >= self.max_probe_steps {
            // No pre-growth rate to compare against (cold-start ramp):
            // nothing further to wait for — judge (and accept) now so
            // the probe does not block the ramp.
            return true;
        }
        // Enough expected completions at the pre-growth rate that a
        // flat/absent improvement is signal, not noise.
        probe.base_rate * probe.elapsed.as_secs_f64() >= self.judge_expected
    }

    /// Judges a ripe probe: `true` keeps the growth, `false` reverts it.
    ///
    /// - an *improved* completion rate always keeps the growth;
    /// - a *dropped* rate always reverts it (the scattering signature
    ///   the mechanism exists to avoid);
    /// - a *flat* rate keeps the growth only when the core sits on the
    ///   page-hottest node: local compute over the data costs nothing
    ///   and absorbs the queued demand that triggered the move, while a
    ///   remote core that bought no throughput is pure scatter risk.
    ///   This is the learned analogue of the Eq. 1 guard's
    ///   "hottest-node-has-free-cores" exception.
    fn growth_helped(&self, probe: &Probe) -> bool {
        let secs = probe.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return true;
        }
        let probe_rate = probe.completions as f64 / secs;
        if probe.base_rate <= 0.0 {
            // No throughput signal before the move (cold start): trust
            // the load metric that asked for the growth.
            return true;
        }
        if probe_rate >= probe.base_rate * (1.0 + self.min_gain) {
            return true;
        }
        if probe_rate < probe.base_rate * (1.0 - self.max_loss) {
            return false;
        }
        probe.local
    }
}

impl Policy for HillClimbPolicy {
    fn name(&self) -> &str {
        "hillclimb"
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        AllocationMode::next_core(&mut self.placer, ctx)
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        AllocationMode::release_core(&mut self.placer, ctx)
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        if let Some(r) = obs.rate() {
            self.rate = Some(match self.rate {
                None if obs.completions == 0 => return self.tick(obs),
                None => r,
                Some(prev) => prev + 0.25 * (r - prev),
            });
        }
        self.tick(obs);
    }

    fn shape(&mut self, u: i64, nalloc: u32, thresholds: Thresholds) -> i64 {
        if u < thresholds.thmax {
            return u;
        }
        // An over-threshold signal would make the net allocate. While a
        // probe settles, or toward a size that already proved unhelpful,
        // the climber talks the net into Stable instead — the learned
        // analogue of the Eq. 1 guard's damping, which also lets the
        // control interval back off and the LONC streak show up in the
        // transition log.
        let stable = (thresholds.thmin + thresholds.thmax) / 2;
        if self.probe.is_some() {
            return stable;
        }
        if let Some(c) = self.ceiling {
            if nalloc + 1 >= c.at {
                return stable;
            }
        }
        u
    }

    fn grow_denied(&mut self, _core: CoreId) {
        // The growth never happened: there is nothing to judge, and a
        // lingering probe would damp the demand signal while it
        // "settles" on an allocation that was never grown.
        self.probe = None;
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Decision {
        let nalloc = ctx.mode.current.count() as u32;
        match ctx.action {
            AllocAction::Allocate => {
                if self.probe.is_some() {
                    // One probe at a time: judge the in-flight growth
                    // before stacking another.
                    return Decision::Hold;
                }
                if let Some(c) = self.ceiling {
                    if nalloc + 1 >= c.at {
                        // That size was tried and did not help.
                        return Decision::Hold;
                    }
                }
                match AllocationMode::next_core(&mut self.placer, &ctx.mode) {
                    Some(core) => {
                        let total: u64 = ctx.mode.pages_per_node.iter().sum();
                        let hottest = ctx
                            .mode
                            .pages_per_node
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &p)| p)
                            .map(|(n, _)| n);
                        let node = ctx.mode.topology.node_of(core).idx();
                        self.probe = Some(Probe {
                            from: nalloc,
                            base_rate: self.rate.unwrap_or(0.0),
                            local: total == 0 || hottest == Some(node),
                            steps: 0,
                            completions: 0,
                            elapsed: SimDuration::ZERO,
                        });
                        Decision::Grow(core)
                    }
                    None => Decision::Hold,
                }
            }
            AllocAction::Release => {
                // Demand dropped: the probe's question is moot.
                self.probe = None;
                AllocationMode::release_core(&mut self.placer, &ctx.mode)
                    .map(Decision::Shrink)
                    .unwrap_or(Decision::Hold)
            }
            AllocAction::Hold => {
                let Some(probe) = self.probe else {
                    return Decision::Hold;
                };
                if !self.ripe(&probe) {
                    return Decision::Hold;
                }
                self.probe = None;
                if self.growth_helped(&probe) {
                    // Accept: the post-growth rate becomes the new base.
                    let secs = probe.elapsed.as_secs_f64();
                    if secs > 0.0 {
                        self.rate = Some(probe.completions as f64 / secs);
                    }
                    return Decision::Hold;
                }
                // Revert the growth that did not help and remember the
                // unhelpful size.
                if nalloc > probe.from && nalloc > 1 {
                    self.ceiling = Some(Ceiling { at: nalloc, age: 0 });
                    return AllocationMode::release_core(&mut self.placer, &ctx.mode)
                        .map(Decision::Shrink)
                        .unwrap_or(Decision::Hold);
                }
                Decision::Hold
            }
        }
    }
}

impl HillClimbPolicy {
    /// Per-step bookkeeping shared by every `observe` path.
    fn tick(&mut self, obs: &Observation<'_>) {
        if let Some(p) = self.probe.as_mut() {
            p.steps += 1;
            p.completions += obs.completions;
            p.elapsed += obs.interval;
        }
        if let Some(c) = self.ceiling.as_mut() {
            c.age += 1;
            if c.age > self.ceiling_ttl {
                // The workload may have shifted; allow re-probing.
                self.ceiling = None;
            }
        }
    }
}

/// SLA enforcement as a policy: wraps any inner policy and applies an
/// [`SlaGovernor`]'s rolling core cap — the governor's `observe` becomes
/// [`Policy::observe`] and its damping becomes a [`Policy::decide`]
/// override (growth at the cap is vetoed; an allocation above a freshly
/// lowered cap is shrunk). The inner policy still decides *where*.
///
/// ```
/// use elastic_core::{PolicyId, SlaCappedPolicy, SlaPolicy};
///
/// // Adaptive placement under a 4-core budget on a 16-core machine.
/// let capped = SlaCappedPolicy::new(
///     PolicyId::Adaptive.build(),
///     SlaPolicy::cores(4),
///     16,
///     4,
/// );
/// assert_eq!(capped.cap(), 4, "the core budget seeds the rolling cap");
/// assert_eq!(capped.violations(), 0);
/// ```
pub struct SlaCappedPolicy {
    inner: Box<dyn Policy>,
    governor: SlaGovernor,
}

impl SlaCappedPolicy {
    /// Caps `inner` with `policy` on a machine of `ntotal` cores
    /// (`cores_per_socket` wide).
    pub fn new(
        inner: Box<dyn Policy>,
        policy: SlaPolicy,
        ntotal: u32,
        cores_per_socket: u32,
    ) -> Self {
        SlaCappedPolicy {
            inner,
            governor: SlaGovernor::new(policy, ntotal, cores_per_socket),
        }
    }

    /// The governor's current core cap.
    pub fn cap(&self) -> u32 {
        self.governor.cap()
    }

    /// Budget violations observed so far.
    pub fn violations(&self) -> u64 {
        self.governor.violations
    }
}

impl Policy for SlaCappedPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        self.inner.next_core(ctx)
    }

    fn release_core(&mut self, ctx: &ModeCtx<'_>) -> Option<CoreId> {
        self.inner.release_core(ctx)
    }

    fn observe(&mut self, obs: &Observation<'_>) {
        let busy_cores = obs.sample.cpu_load_pct / 100.0 * obs.nalloc as f64;
        self.governor
            .observe(obs.sample, obs.ht_rate, busy_cores, obs.interval);
        self.inner.observe(obs);
    }

    fn shape(&mut self, u: i64, nalloc: u32, thresholds: Thresholds) -> i64 {
        // The governor's damping (§VII future work): growth at the cap
        // reads as Stable, an over-cap allocation as Idle (release).
        let u = self.governor.damp(u, nalloc, thresholds);
        self.inner.shape(u, nalloc, thresholds)
    }

    fn grow_denied(&mut self, core: CoreId) {
        self.inner.grow_denied(core);
    }

    fn decide(&mut self, ctx: &PolicyCtx<'_>) -> Decision {
        let nalloc = ctx.mode.current.count() as u32;
        let cap = self.governor.cap();
        if nalloc > cap {
            // The cap was just lowered below the allocation: shrink
            // regardless of the net's verdict.
            return self
                .inner
                .release_core(&ctx.mode)
                .map(Decision::Shrink)
                .unwrap_or(Decision::Hold);
        }
        if ctx.action == AllocAction::Allocate && nalloc >= cap {
            return Decision::Hold;
        }
        self.inner.decide(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emca_metrics::SimTime;
    use numa_sim::Topology;
    use os_sim::CoreMask;

    fn sample() -> MonitorSample {
        MonitorSample {
            at: SimTime::ZERO,
            u: 50,
            cpu_load_pct: 50.0,
            ht_imc_ratio: 0.0,
            pages_per_node: vec![0; 4],
            mc_util_per_node: vec![0.0; 4],
            max_mc_util: 0.0,
            mean_mc_util: 0.0,
            mc_pressure: 0.0,
        }
    }

    fn obs(sample: &MonitorSample, completions: u64, ms: u64, nalloc: u32) -> Observation<'_> {
        Observation {
            sample,
            completions,
            interval: SimDuration::from_millis(ms),
            nalloc,
            ht_rate: 0.0,
            queue_depth: 0,
        }
    }

    fn ctx_with<'a>(
        topo: &'a Topology,
        current: CoreMask,
        pages: &'a [u64],
        action: AllocAction,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            mode: ModeCtx {
                topology: topo,
                current,
                barred: CoreMask::EMPTY,
                pages_per_node: pages,
                mc_util_per_node: &[],
            },
            action,
        }
    }

    #[test]
    fn policy_id_round_trips_all_names() {
        for id in PolicyId::ALL {
            assert_eq!(PolicyId::try_from(id.name()), Ok(id));
            assert_eq!(policy_by_name(id.name()).unwrap().name(), id.name());
        }
    }

    #[test]
    fn unknown_policy_is_an_error_listing_valid_names() {
        let err = PolicyId::try_from("magic").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("magic"), "{msg}");
        for id in PolicyId::ALL {
            assert!(msg.contains(id.name()), "{msg} must list {}", id.name());
        }
        assert!(policy_by_name("magic").is_err());
    }

    #[test]
    fn plain_modes_follow_the_net() {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let mut p: Box<dyn Policy> = PolicyId::Dense.build();
        let d = p.decide(&ctx_with(
            &topo,
            CoreMask::single(CoreId(0)),
            &pages,
            AllocAction::Allocate,
        ));
        assert_eq!(d, Decision::Grow(CoreId(1)));
        let d = p.decide(&ctx_with(
            &topo,
            CoreMask::from_cores([CoreId(0), CoreId(1)]),
            &pages,
            AllocAction::Release,
        ));
        assert_eq!(d, Decision::Shrink(CoreId(1)));
        let d = p.decide(&ctx_with(
            &topo,
            CoreMask::single(CoreId(0)),
            &pages,
            AllocAction::Hold,
        ));
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn saturated_allocate_holds() {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let mut p: Box<dyn Policy> = PolicyId::Sparse.build();
        let all = CoreMask::all(&topo);
        let d = p.decide(&ctx_with(&topo, all, &pages, AllocAction::Allocate));
        assert_eq!(d, Decision::Hold);
    }

    /// Drives a hill climber through: grow, settle with the given
    /// post-growth completion pattern, then a Hold verdict to judge.
    fn probe_cycle(hc: &mut HillClimbPolicy, post_rate_per_100ms: u64) -> Decision {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let s = sample();
        // Establish a base rate of 100 q/s over a few steps.
        for _ in 0..4 {
            hc.observe(&obs(&s, 10, 100, 2));
        }
        let two = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        let d = hc.decide(&ctx_with(&topo, two, &pages, AllocAction::Allocate));
        let Decision::Grow(core) = d else {
            panic!("expected growth, got {d:?}");
        };
        let mut three = two;
        three.insert(core);
        // Settle long enough to be ripe (expected completions covered).
        for _ in 0..8 {
            hc.observe(&obs(&s, post_rate_per_100ms, 100, 3));
        }
        hc.decide(&ctx_with(&topo, three, &pages, AllocAction::Hold))
    }

    #[test]
    fn hillclimb_keeps_growth_that_helped() {
        let mut hc = HillClimbPolicy::default();
        // 15 completions per 100 ms > base 10: clear improvement.
        let d = probe_cycle(&mut hc, 15);
        assert_eq!(d, Decision::Hold, "improving growth must be kept");
        assert!(hc.ceiling.is_none());
        // Rate was re-based to the probe window's measurement.
        assert!(hc.rate.unwrap() > 120.0);
    }

    #[test]
    fn hillclimb_keeps_throughput_neutral_growth() {
        // Flat rate: the load signal demanded the core and throughput
        // carries no evidence against it — kept (see `growth_helped`).
        let mut hc = HillClimbPolicy::default();
        let d = probe_cycle(&mut hc, 10);
        assert_eq!(d, Decision::Hold, "neutral growth must be kept");
        assert!(hc.ceiling.is_none());
    }

    #[test]
    fn hillclimb_reverts_flat_remote_growth() {
        // Data lives on node 0, node 0 is full, the next adaptive core
        // is remote; a flat probe there is pure scatter risk → revert.
        let topo = Topology::opteron_4x4();
        let pages = [100u64, 0, 0, 0];
        let s = sample();
        let mut hc = HillClimbPolicy::default();
        for _ in 0..4 {
            hc.observe(&obs(&s, 10, 100, 4));
        }
        let node0 = CoreMask::from_cores([CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        let d = hc.decide(&ctx_with(&topo, node0, &pages, AllocAction::Allocate));
        let Decision::Grow(core) = d else {
            panic!("expected growth, got {d:?}");
        };
        assert_ne!(topo.node_of(core), numa_sim::NodeId(0), "node 0 is full");
        let mut five = node0;
        five.insert(core);
        for _ in 0..8 {
            hc.observe(&obs(&s, 10, 100, 5)); // flat rate
        }
        let d = hc.decide(&ctx_with(&topo, five, &pages, AllocAction::Hold));
        assert!(
            matches!(d, Decision::Shrink(_)),
            "flat remote growth must revert, got {d:?}"
        );
        assert_eq!(hc.ceiling.expect("ceiling recorded").at, 5);
    }

    #[test]
    fn hillclimb_reverts_growth_that_hurt() {
        let mut hc = HillClimbPolicy::default();
        // 7 completions per 100 ms < base 10: the growth scattered the
        // workload and throughput dropped.
        let d = probe_cycle(&mut hc, 7);
        assert!(
            matches!(d, Decision::Shrink(_)),
            "harmful growth must revert, got {d:?}"
        );
        let c = hc.ceiling.expect("revert records a ceiling");
        assert_eq!(c.at, 3);
    }

    #[test]
    fn ceiling_blocks_regrowth_until_it_ages_out() {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let s = sample();
        let mut hc = HillClimbPolicy::default();
        let _ = probe_cycle(&mut hc, 7); // revert -> ceiling at 3
        let two = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        let d = hc.decide(&ctx_with(&topo, two, &pages, AllocAction::Allocate));
        assert_eq!(d, Decision::Hold, "ceiling must block regrowth");
        // Age the ceiling out.
        for _ in 0..=hc.ceiling_ttl {
            hc.observe(&obs(&s, 10, 100, 2));
        }
        assert!(hc.ceiling.is_none(), "ceiling must expire");
        let d = hc.decide(&ctx_with(&topo, two, &pages, AllocAction::Allocate));
        assert!(matches!(d, Decision::Grow(_)), "expired ceiling re-probes");
    }

    #[test]
    fn hillclimb_cold_start_growth_is_trusted() {
        // No completions at all (queries longer than the window): the
        // climber must not fight the ramp-up.
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let s = sample();
        let mut hc = HillClimbPolicy::default();
        let one = CoreMask::single(CoreId(0));
        let d = hc.decide(&ctx_with(&topo, one, &pages, AllocAction::Allocate));
        let Decision::Grow(core) = d else {
            panic!("cold start must grow");
        };
        let mut two = one;
        two.insert(core);
        for _ in 0..hc.max_probe_steps {
            hc.observe(&obs(&s, 0, 1, 2));
        }
        let d = hc.decide(&ctx_with(&topo, two, &pages, AllocAction::Hold));
        assert_eq!(d, Decision::Hold, "no-signal probe must not revert");
        assert!(hc.ceiling.is_none());
    }

    #[test]
    fn release_cancels_probe() {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let mut hc = HillClimbPolicy::default();
        let two = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        let d = hc.decide(&ctx_with(&topo, two, &pages, AllocAction::Allocate));
        assert!(matches!(d, Decision::Grow(_)));
        assert!(hc.probe.is_some());
        let d = hc.decide(&ctx_with(&topo, two, &pages, AllocAction::Release));
        assert!(matches!(d, Decision::Shrink(_)));
        assert!(hc.probe.is_none(), "release voids the probe");
    }

    #[test]
    fn sla_capped_policy_vetoes_growth_at_cap() {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let mut p = SlaCappedPolicy::new(PolicyId::Dense.build(), SlaPolicy::cores(2), 16, 4);
        assert_eq!(p.cap(), 2);
        assert_eq!(p.name(), "dense");
        let two = CoreMask::from_cores([CoreId(0), CoreId(1)]);
        let d = p.decide(&ctx_with(&topo, two, &pages, AllocAction::Allocate));
        assert_eq!(d, Decision::Hold, "growth at the cap is vetoed");
        let one = CoreMask::single(CoreId(0));
        let d = p.decide(&ctx_with(&topo, one, &pages, AllocAction::Allocate));
        assert_eq!(d, Decision::Grow(CoreId(1)), "below the cap it follows");
    }

    #[test]
    fn sla_capped_policy_sheds_above_a_lowered_cap() {
        let topo = Topology::opteron_4x4();
        let pages = [0u64; 4];
        let s = sample();
        let budget = SlaPolicy {
            max_ht_rate: Some(1e6),
            ..SlaPolicy::unconstrained()
        };
        let mut p = SlaCappedPolicy::new(PolicyId::Dense.build(), budget, 16, 4);
        // Violating traffic lowers the cap below the allocation.
        for _ in 0..15 {
            p.observe(&Observation {
                sample: &s,
                completions: 0,
                interval: SimDuration::from_millis(50),
                nalloc: 4,
                ht_rate: 1e9,
                queue_depth: 0,
            });
        }
        assert_eq!(p.cap(), 1);
        assert!(p.violations() >= 15);
        let four = CoreMask::from_cores([CoreId(0), CoreId(1), CoreId(2), CoreId(3)]);
        let d = p.decide(&ctx_with(&topo, four, &pages, AllocAction::Hold));
        assert!(
            matches!(d, Decision::Shrink(_)),
            "over-cap allocation must shed even on Hold, got {d:?}"
        );
    }
}
