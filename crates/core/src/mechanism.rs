//! The elastic multi-core allocation mechanism (the paper's §III–§IV
//! pipeline, assembled).
//!
//! Every control interval the mechanism:
//!
//! 1. **rule** — samples resource usage through the [`Monitor`]
//!    (mpstat/likwid analogues) and refreshes the page statistics;
//! 2. **condition** — injects the measured `u` into the PetriNet
//!    ([`ElasticNet::step`]), which classifies the performance state and
//!    decides whether a core must be allocated or released;
//! 3. **action** — asks the [`Policy`] *where*, and applies the
//!    new cpuset mask to the DBMS group after the mode's actuation
//!    latency (the paper's measured token-flow times: dense 17 ms,
//!    sparse 21 ms, adaptive 31 ms).
//!
//! A single mechanism instance supports all DBMS clients (§V).

use crate::modes::ModeCtx;
use crate::monitor::{MetricKind, Monitor, MonitorSample};
use crate::policy::{Decision, Observation, Policy, PolicyCtx};
use crate::tenant::TenantBinding;
use emca_metrics::{SimDuration, SimTime};
use numa_sim::SpaceId;
use os_sim::{CoreMask, GroupId, Kernel};
use prt_petrinet::{AllocAction, ElasticNet, StateKind, Thresholds};

/// Mechanism configuration.
#[derive(Clone, Debug)]
pub struct MechanismConfig {
    /// Metric driving the PrT transitions.
    pub metric: MetricKind,
    /// PrT thresholds (defaults depend on the metric).
    pub thresholds: Thresholds,
    /// Base (maximum) control interval — the paper's 50 ms. The live
    /// interval adapts between [`MechanismConfig::min_interval`] and this
    /// value: it collapses to the floor while the allocation is being
    /// hunted (an action just fired) and backs off exponentially once the
    /// system holds steady, so control overhead is paid only when the
    /// workload is actually moving.
    pub interval: SimDuration,
    /// Floor of the adaptive control interval. Also the cold-start
    /// interval: a freshly installed mechanism reacts at this rate until
    /// it has converged once. Raised automatically toward the observed
    /// query service time (see [`ElasticMechanism::note_response`]) so a
    /// scaled-down simulation keeps the paper's interval-to-service-time
    /// ratio instead of pinning 50 ms of wall-clock against
    /// millisecond-long queries.
    pub min_interval: SimDuration,
    /// Delay between deciding an action and the cpuset taking effect
    /// (the token-flow overhead measured in §V). Clamped to half the
    /// live control interval so an actuation never blocks the next
    /// control step.
    pub actuation_latency: SimDuration,
    /// Cores handed to the OS at start (the paper defaults to 1).
    pub initial_cores: u32,
    /// Memory-saturation guard implementing Eq. 1's `p(nalloc) ≥
    /// p(ntotal)` condition: when the workload-weighted memory-controller
    /// utilisation is at or above this threshold, an Overload
    /// classification is damped to Stable — extra cores cannot improve a
    /// memory-bound workload, only scatter it. Growth is never damped
    /// while the page-hottest node still has free cores (cores *on* the
    /// data cannot scatter it). `None` disables the guard (ablation).
    pub saturation_guard: Option<f64>,
    /// Consecutive Idle classifications required before a release fires
    /// (LONC damping): a single below-`thmin` window — one drained
    /// runqueue between query waves — must not shed a core that the next
    /// wave immediately re-allocates.
    pub release_hysteresis: u32,
}

impl MechanismConfig {
    /// Paper defaults for the CPU-load strategy.
    pub fn cpu_load() -> Self {
        MechanismConfig {
            metric: MetricKind::CpuLoad,
            thresholds: Thresholds::cpu_load_default(),
            interval: SimDuration::from_millis(50),
            min_interval: SimDuration::from_micros(200),
            actuation_latency: SimDuration::from_millis(31),
            initial_cores: 1,
            saturation_guard: Some(0.9),
            release_hysteresis: 2,
        }
    }

    /// Paper defaults for the HT/IMC strategy (§V-B).
    pub fn ht_imc() -> Self {
        MechanismConfig {
            metric: MetricKind::HtImcRatio,
            thresholds: Thresholds::ht_imc_default(),
            ..Self::cpu_load()
        }
    }

    /// Sets the actuation latency from the paper's per-mode token-flow
    /// measurements (the hill climber places adaptively, so it pays the
    /// adaptive mode's token-flow cost).
    pub fn with_mode_latency(mut self, mode_name: &str) -> Self {
        self.actuation_latency = match mode_name {
            "dense" => SimDuration::from_millis(17),
            "sparse" => SimDuration::from_millis(21),
            "adaptive" | "hillclimb" => SimDuration::from_millis(31),
            _ => self.actuation_latency,
        };
        self
    }
}

/// One recorded state transition (Fig. 7's X axis).
#[derive(Clone, Debug)]
pub struct TransitionEvent {
    /// When the control step ran.
    pub at: SimTime,
    /// The fired-path label, e.g. `"t1-Overload-t5"`.
    pub label: String,
    /// Classified state.
    pub state: StateKind,
    /// Action taken.
    pub action: AllocAction,
    /// Metric value consumed.
    pub u: i64,
    /// CPU load (%) at the sample, regardless of metric.
    pub cpu_load_pct: f64,
    /// Allocated cores after the step.
    pub nalloc: u32,
}

/// The assembled mechanism.
pub struct ElasticMechanism {
    cfg: MechanismConfig,
    net: ElasticNet,
    policy: Box<dyn Policy>,
    monitor: Monitor,
    group: GroupId,
    next_control: SimTime,
    /// Live control interval (AIMD between `min_interval` and
    /// `interval`).
    cur_interval: SimDuration,
    /// Smoothed observed query response time (seconds), fed by the
    /// harness through [`ElasticMechanism::note_response`].
    service_ewma: Option<f64>,
    /// Completed queries since the last control step (throughput
    /// feedback for [`Policy::observe`]).
    completions_since: u64,
    /// When the previous control step ran (observation window anchor).
    last_control_at: SimTime,
    /// Machine-wide link-byte count at the previous control step.
    prev_link_bytes: u64,
    /// Consecutive Idle classifications (release hysteresis state).
    idle_streak: u32,
    /// Requests queued in front of the engine (serving layer); 0 in
    /// closed-loop runs. Fed by [`ElasticMechanism::note_queue_depth`].
    queue_depth: u64,
    /// A decided-but-not-yet-applied mask (actuation latency), plus the
    /// core whose arbiter ownership is released once the mask lands (a
    /// tenant shrink must not free the core for peers before it has
    /// left this group's cpuset).
    pending: Option<(SimTime, CoreMask, Option<numa_sim::CoreId>)>,
    /// Multi-tenant arbitration handle; `None` in single-tenant runs.
    tenancy: Option<TenantBinding>,
    /// Transition log (Fig. 7).
    pub events: Vec<TransitionEvent>,
    /// Number of control steps executed.
    pub steps: u64,
}

impl ElasticMechanism {
    /// Installs the mechanism on a kernel: shrinks the group's cpuset to
    /// the initial allocation (chosen by the policy) and arms the
    /// control timer.
    pub fn install(
        kernel: &mut Kernel,
        group: GroupId,
        space: SpaceId,
        policy: Box<dyn Policy>,
        cfg: MechanismConfig,
    ) -> Self {
        Self::install_inner(kernel, group, space, policy, cfg, None)
    }

    /// Installs one tenant's mechanism under a shared
    /// [`TenantArbiter`](crate::tenant::TenantArbiter): the initial
    /// cores are claimed through the arbiter, placement skips cores
    /// owned by other tenants, and every grow/shrink is arbitrated
    /// (growth past the tenant's entitlement can be denied, over-share
    /// allocations are yielded back when a peer starves).
    pub fn install_tenant(
        kernel: &mut Kernel,
        group: GroupId,
        space: SpaceId,
        policy: Box<dyn Policy>,
        cfg: MechanismConfig,
        binding: TenantBinding,
    ) -> Self {
        Self::install_inner(kernel, group, space, policy, cfg, Some(binding))
    }

    fn install_inner(
        kernel: &mut Kernel,
        group: GroupId,
        space: SpaceId,
        mut policy: Box<dyn Policy>,
        cfg: MechanismConfig,
        tenancy: Option<TenantBinding>,
    ) -> Self {
        let topo = kernel.machine().topology().clone();
        let ntotal = topo.n_cores() as u32;
        assert!(
            (1..=ntotal).contains(&cfg.initial_cores),
            "initial_cores out of range"
        );
        // Build the initial mask by asking the policy for cores one by
        // one (skipping cores other tenants already own).
        let pages = kernel.machine().mem().pages_per_node(space).to_vec();
        let mut mask = CoreMask::EMPTY;
        for _ in 0..cfg.initial_cores {
            let barred = match &tenancy {
                Some(t) => t.arbiter.borrow().foreign_mask(t.tenant),
                None => CoreMask::EMPTY,
            };
            let ctx = ModeCtx {
                topology: &topo,
                current: mask,
                barred,
                pages_per_node: &pages,
                mc_util_per_node: &[],
            };
            let core = policy.next_core(&ctx).expect("initial cores available");
            if let Some(t) = &tenancy {
                t.arbiter.borrow_mut().claim_initial(t.tenant, core);
            }
            mask.insert(core);
        }
        kernel.set_group_mask(group, mask);
        let net = ElasticNet::new(cfg.thresholds, ntotal, cfg.initial_cores);
        let monitor = Monitor::new(kernel, group, space, cfg.metric);
        // Cold start reacts at the floor interval: the allocation is one
        // core and almost certainly wrong, so the first control steps
        // must come quickly relative to the workload.
        let cur_interval = cfg.min_interval.min(cfg.interval);
        let next_control = kernel.now() + cur_interval;
        let prev_link_bytes = kernel
            .machine()
            .counters()
            .snapshot()
            .link_bytes
            .iter()
            .sum();
        ElasticMechanism {
            cfg,
            net,
            policy,
            monitor,
            group,
            next_control,
            cur_interval,
            service_ewma: None,
            completions_since: 0,
            last_control_at: kernel.now(),
            prev_link_bytes,
            idle_streak: 0,
            queue_depth: 0,
            pending: None,
            tenancy,
            events: Vec::new(),
            steps: 0,
        }
    }

    /// Feeds an observed query response time into the interval scaler.
    /// The control interval's floor tracks a fraction of the smoothed
    /// service time (clamped to `[min_interval, interval]`), so the
    /// mechanism reacts within a handful of queries at any simulation
    /// scale — at full scale, where queries take seconds, the floor sits
    /// at the paper's 50 ms default. Each call also counts one completed
    /// query toward the throughput feedback handed to
    /// [`Policy::observe`].
    pub fn note_response(&mut self, response: SimDuration) {
        self.completions_since += 1;
        let secs = response.as_secs_f64();
        self.service_ewma = Some(match self.service_ewma {
            None => secs,
            Some(prev) => prev + 0.2 * (secs - prev),
        });
    }

    /// Reports the serving layer's current admission-queue depth. The
    /// backlog is demand the CPU-load metric cannot see — a single
    /// admitted query can leave a one-core allocation half idle while
    /// dozens of requests wait — so the next control step boosts the
    /// metric value proportionally to queued-requests-per-core. Runs
    /// without a front door never call this and behave exactly as
    /// before.
    pub fn note_queue_depth(&mut self, depth: u64) {
        self.queue_depth = depth;
    }

    /// The live floor of the control interval (service-time scaled).
    fn effective_min(&self) -> SimDuration {
        let lo = self.cfg.min_interval.min(self.cfg.interval);
        match self.service_ewma {
            None => lo,
            Some(s) => SimDuration::from_secs_f64(s / 64.0).clamp(lo, self.cfg.interval),
        }
    }

    /// The live control interval (diagnostics and tests).
    pub fn interval(&self) -> SimDuration {
        self.cur_interval
    }

    /// The controlled group.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Currently allocated cores (the `Provision` token).
    pub fn nalloc(&self) -> u32 {
        self.net.nalloc()
    }

    /// The underlying PrT net (incidence matrix export etc.).
    pub fn net(&self) -> &ElasticNet {
        &self.net
    }

    /// The allocation policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Drives the mechanism; call once per simulation tick (cheap when
    /// nothing is due). Applies pending actuations and runs control steps
    /// on schedule.
    pub fn poll(&mut self, kernel: &mut Kernel) {
        let now = kernel.now();
        if let Some((due, mask, release)) = self.pending {
            if now >= due {
                kernel.set_group_mask(self.group, mask);
                if let (Some(core), Some(t)) = (release, &self.tenancy) {
                    t.arbiter.borrow_mut().release(t.tenant, core);
                }
                self.pending = None;
            }
        }
        if now >= self.next_control && self.pending.is_none() {
            self.control(kernel);
            self.next_control = now + self.cur_interval;
        }
    }

    /// One rule-condition-action step.
    fn control(&mut self, kernel: &mut Kernel) {
        self.steps += 1;
        let sample = self.monitor.sample(kernel);
        // Throughput/traffic feedback for the policy (hill climbing, SLA
        // budgets); plain placement modes ignore it.
        let window = kernel.now().since(self.last_control_at);
        let link_bytes: u64 = kernel
            .machine()
            .counters()
            .snapshot()
            .link_bytes
            .iter()
            .sum();
        let ht_rate = if window.is_zero() {
            0.0
        } else {
            link_bytes.saturating_sub(self.prev_link_bytes) as f64 / window.as_secs_f64()
        };
        self.policy.observe(&Observation {
            sample: &sample,
            completions: self.completions_since,
            interval: window,
            nalloc: self.net.nalloc(),
            ht_rate,
            queue_depth: self.queue_depth,
        });
        self.completions_since = 0;
        self.last_control_at = kernel.now();
        self.prev_link_bytes = link_bytes;
        // Eq. 1 guard (`p(nalloc) ≥ p(ntotal)`): when the memory
        // controllers actually serving the workload's data are saturated,
        // an extra core cannot improve performance — it can only scatter
        // the working set — so an Overload classification is damped into
        // the stable band and the allocation holds at its local optimum.
        // A core on a node that *already holds* the hot data cannot
        // scatter anything, though: growth is never damped while the
        // page-hottest node still has free cores (reaching them adds
        // local compute and cache without new interconnect traffic).
        let mut u = sample.u;
        // Queue pressure: requests waiting at the front door are demand
        // the load metric cannot see (they occupy no core yet). Each
        // queued request per allocated core pushes the signal up toward
        // Overload, so backlog grows the allocation even while the few
        // admitted queries leave it under-utilised.
        if self.queue_depth > 0 {
            let boost = (100 * self.queue_depth) / self.net.nalloc().max(1) as u64;
            u = (u + boost as i64).min(100);
        }
        if let Some(guard) = self.cfg.saturation_guard {
            let th = self.cfg.thresholds;
            if u >= th.thmax && sample.mc_pressure >= guard {
                let topo = kernel.machine().topology();
                let current = kernel.group_mask(self.group);
                let hottest_full = sample
                    .pages_per_node
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &p)| p)
                    .map(|(n, _)| {
                        topo.cores_of(numa_sim::NodeId(n as u16))
                            .all(|c| current.contains(c))
                    })
                    .unwrap_or(true);
                if hottest_full {
                    u = (th.thmin + th.thmax) / 2;
                }
            }
        }
        // Release hysteresis (LONC damping): one below-thmin window is
        // scheduling noise, not a shrunken workload.
        {
            let th = self.cfg.thresholds;
            if u <= th.thmin {
                self.idle_streak += 1;
                if self.idle_streak < self.cfg.release_hysteresis {
                    u = (th.thmin + th.thmax) / 2;
                }
            } else {
                self.idle_streak = 0;
            }
        }
        // Policy signal shaping (SLA damping, hill-climb probe holds):
        // runs last so a policy-forced release is not re-damped by the
        // hysteresis above. Identity for the plain placement modes.
        u = self.policy.shape(
            u,
            kernel.group_mask(self.group).count() as u32,
            self.cfg.thresholds,
        );
        let report = self.net.step(u);
        let current = kernel.group_mask(self.group);
        let topo = kernel.machine().topology().clone();
        let barred = match &self.tenancy {
            Some(t) => t.arbiter.borrow().foreign_mask(t.tenant),
            None => CoreMask::EMPTY,
        };
        let ctx = PolicyCtx {
            mode: ModeCtx {
                topology: &topo,
                current,
                barred,
                pages_per_node: &sample.pages_per_node,
                mc_util_per_node: &sample.mc_util_per_node,
            },
            action: report.action,
        };
        let mut decision = self.policy.decide(&ctx);
        // Tenant arbitration: record this step's demand, yield a core
        // toward a starved peer, and pass every grow/shrink through the
        // shared ownership map. A denied growth becomes a Hold (the
        // policy is told, so it can roll back probe state); the
        // Provision resync below keeps the net honest either way. A
        // shrink's ownership release is *deferred* to actuation time —
        // releasing at decision time would let a peer claim (and
        // schedule on) the core while it is still in this group's
        // not-yet-rewritten cpuset mask.
        let mut deferred_release = None;
        if let Some(t) = self.tenancy.clone() {
            let mut arb = t.arbiter.borrow_mut();
            arb.note(t.tenant, report.action == AllocAction::Allocate);
            if !matches!(decision, Decision::Shrink(_)) && arb.must_yield(t.tenant) {
                // Route the forced release through the policy's own
                // Release path (not bare release_core) so stateful
                // policies run their release bookkeeping — the hill
                // climber drops its in-flight probe exactly as on a
                // net-driven release.
                let release_ctx = PolicyCtx {
                    mode: ctx.mode,
                    action: AllocAction::Release,
                };
                decision = match self.policy.decide(&release_ctx) {
                    Decision::Shrink(core) => {
                        arb.yields += 1;
                        Decision::Shrink(core)
                    }
                    _ => Decision::Hold,
                };
            }
            decision = match decision {
                Decision::Grow(core) if !arb.try_claim(t.tenant, core) => {
                    self.policy.grow_denied(core);
                    Decision::Hold
                }
                Decision::Shrink(core) => {
                    deferred_release = Some(core);
                    Decision::Shrink(core)
                }
                other => other,
            };
        }
        let decision = decision;
        let new_mask = match decision {
            Decision::Grow(core) => {
                debug_assert!(!current.contains(core), "policy grew an allocated core");
                let mut m = current;
                m.insert(core);
                Some(m)
            }
            Decision::Shrink(core) => {
                debug_assert!(current.contains(core), "policy shrank a foreign core");
                let mut m = current;
                m.remove(core);
                Some(m)
            }
            Decision::Hold => None,
        };
        // Resync the Provision token whenever the decision diverged from
        // the net's verdict — the placement found no core, or the policy
        // vetoed/overrode the move (SLA cap, hill-climb revert).
        let in_sync = matches!(
            (report.action, decision),
            (AllocAction::Allocate, Decision::Grow(_))
                | (AllocAction::Release, Decision::Shrink(_))
                | (AllocAction::Hold, Decision::Hold)
        );
        let nalloc_after = new_mask.unwrap_or(current).count() as u32;
        if !in_sync {
            self.net.set_nalloc(nalloc_after);
        }
        // AIMD interval adaptation: hunt fast, hold cheap. Keyed on the
        // net's verdict (not the final decision) so a saturated Allocate
        // keeps reacting at the floor, exactly as before the Policy API.
        self.cur_interval = match report.action {
            AllocAction::Allocate | AllocAction::Release => self.effective_min(),
            AllocAction::Hold => {
                (self.cur_interval * 2).clamp(self.effective_min(), self.cfg.interval)
            }
        };
        if let Some(mask) = new_mask {
            debug_assert_eq!(mask.count() as u32, self.net.nalloc());
            // Actuation never blocks more than half a control period.
            let latency = self.cfg.actuation_latency.min(self.cur_interval / 2);
            self.pending = Some((kernel.now() + latency, mask, deferred_release));
        }
        let effective = match decision {
            Decision::Grow(_) => AllocAction::Allocate,
            Decision::Shrink(_) => AllocAction::Release,
            Decision::Hold => AllocAction::Hold,
        };
        self.record(&sample, &report, effective, nalloc_after);
    }

    fn record(
        &mut self,
        sample: &MonitorSample,
        report: &prt_petrinet::StepReport,
        action: AllocAction,
        nalloc: u32,
    ) {
        self.events.push(TransitionEvent {
            at: sample.at,
            label: report.label.clone(),
            state: report.state,
            action,
            u: report.u,
            cpu_load_pct: sample.cpu_load_pct,
            nalloc,
        });
    }

    /// Runs the kernel to `deadline`, polling the mechanism every tick —
    /// the main driver loop of every mechanism experiment.
    pub fn run_with(&mut self, kernel: &mut Kernel, deadline: SimTime) {
        while kernel.now() < deadline {
            kernel.run_tick();
            self.poll(kernel);
        }
    }

    /// Like [`ElasticMechanism::run_with`] but stops early when `pred`
    /// holds. Returns true if the predicate fired.
    pub fn run_with_until(
        &mut self,
        kernel: &mut Kernel,
        deadline: SimTime,
        mut pred: impl FnMut(&Kernel) -> bool,
    ) -> bool {
        while kernel.now() < deadline {
            if pred(kernel) {
                return true;
            }
            kernel.run_tick();
            self.poll(kernel);
        }
        pred(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{AdaptiveMode, DenseMode, SparseMode};
    use emca_metrics::SimDuration;
    use numa_sim::CoreId;
    use os_sim::SpinWork;

    fn setup() -> (Kernel, GroupId, SpaceId) {
        let mut k = Kernel::opteron_4x4();
        let all = CoreMask::all(k.machine().topology());
        let g = k.create_group(all);
        let space = k.machine_mut().create_space();
        (k, g, space)
    }

    fn fast_cfg() -> MechanismConfig {
        MechanismConfig {
            interval: SimDuration::from_millis(5),
            actuation_latency: SimDuration::from_millis(1),
            ..MechanismConfig::cpu_load()
        }
    }

    #[test]
    fn install_shrinks_to_initial_core() {
        let (mut k, g, space) = setup();
        let mech = ElasticMechanism::install(&mut k, g, space, Box::new(DenseMode), fast_cfg());
        assert_eq!(k.group_mask(g).count(), 1);
        assert_eq!(k.group_mask(g).first(), Some(CoreId(0)));
        assert_eq!(mech.nalloc(), 1);
        assert_eq!(mech.policy_name(), "dense");
    }

    #[test]
    fn overload_grows_allocation() {
        let (mut k, g, space) = setup();
        let mut mech = ElasticMechanism::install(&mut k, g, space, Box::new(DenseMode), fast_cfg());
        // Ten CPU-hungry threads on one allowed core: load saturates.
        for i in 0..10 {
            k.spawn(
                format!("burn{i}"),
                g,
                None,
                Box::new(SpinWork::new(SimDuration::from_secs(10))),
            );
        }
        mech.run_with(&mut k, SimTime::from_millis(400));
        assert!(
            mech.nalloc() >= 4,
            "allocation did not grow: nalloc={} events={:?}",
            mech.nalloc(),
            mech.events.last()
        );
        assert_eq!(k.group_mask(g).count() as u32, mech.nalloc());
        assert!(mech.events.iter().any(|e| e.label == "t1-Overload-t5"));
    }

    #[test]
    fn idle_shrinks_allocation() {
        let (mut k, g, space) = setup();
        let cfg = MechanismConfig {
            initial_cores: 6,
            ..fast_cfg()
        };
        let mut mech = ElasticMechanism::install(&mut k, g, space, Box::new(DenseMode), cfg);
        assert_eq!(mech.nalloc(), 6);
        // No load at all: the mechanism must release down to one core.
        mech.run_with(&mut k, SimTime::from_millis(500));
        assert_eq!(mech.nalloc(), 1, "idle system should shrink to 1 core");
        assert!(mech.events.iter().any(|e| e.label == "t0-Idle-t4"));
        assert!(mech.events.iter().any(|e| e.label == "t0-Idle-t7"));
    }

    #[test]
    fn stable_load_holds_allocation() {
        let (mut k, g, space) = setup();
        let cfg = MechanismConfig {
            initial_cores: 2,
            ..fast_cfg()
        };
        let mut mech = ElasticMechanism::install(&mut k, g, space, Box::new(DenseMode), cfg);
        // One spinning thread over 2 cores ≈ 50% group load: stable band.
        k.spawn(
            "halfload",
            g,
            None,
            Box::new(SpinWork::new(SimDuration::from_secs(10))),
        );
        mech.run_with(&mut k, SimTime::from_millis(300));
        assert_eq!(mech.nalloc(), 2, "stable load must hold the allocation");
        assert!(mech.events.iter().any(|e| e.label == "t2-Stable-t3"));
    }

    #[test]
    fn sparse_mode_spreads_allocations() {
        let (mut k, g, space) = setup();
        let mut mech =
            ElasticMechanism::install(&mut k, g, space, Box::new(SparseMode), fast_cfg());
        for i in 0..12 {
            k.spawn(
                format!("burn{i}"),
                g,
                None,
                Box::new(SpinWork::new(SimDuration::from_secs(10))),
            );
        }
        mech.run_with(&mut k, SimTime::from_millis(300));
        let mask = k.group_mask(g);
        assert!(mask.count() >= 4, "expected growth, got {mask:?}");
        // Sparse must touch several nodes early.
        let per_node = mask.count_per_node(k.machine().topology());
        let nodes_used = per_node.iter().filter(|&&c| c > 0).count();
        assert!(nodes_used >= 3, "sparse should spread: {per_node:?}");
        drop(mech);
    }

    #[test]
    fn adaptive_mode_follows_pages() {
        let (mut k, g, space) = setup();
        // Home DBMS pages on node 2 before installing.
        let region = k.machine_mut().alloc(space, 8 * numa_sim::SEG_BYTES);
        for seg in region.segments() {
            k.machine_mut().access_segment(
                CoreId(8),
                seg,
                numa_sim::AccessKind::Write,
                numa_sim::StreamId(0),
            );
        }
        let mech = ElasticMechanism::install(
            &mut k,
            g,
            space,
            Box::new(AdaptiveMode::default()),
            fast_cfg(),
        );
        // The initial core must be on node 2 (the hottest node).
        let first = k.group_mask(g).first().expect("one core");
        assert_eq!(k.machine().topology().node_of(first), numa_sim::NodeId(2));
        assert_eq!(mech.policy_name(), "adaptive");
    }

    #[test]
    fn actuation_latency_defaults_match_paper() {
        let cfg = MechanismConfig::cpu_load().with_mode_latency("dense");
        assert_eq!(cfg.actuation_latency, SimDuration::from_millis(17));
        let cfg = MechanismConfig::cpu_load().with_mode_latency("sparse");
        assert_eq!(cfg.actuation_latency, SimDuration::from_millis(21));
        let cfg = MechanismConfig::cpu_load().with_mode_latency("adaptive");
        assert_eq!(cfg.actuation_latency, SimDuration::from_millis(31));
    }

    #[test]
    fn ht_imc_config_uses_ratio_thresholds() {
        let cfg = MechanismConfig::ht_imc();
        assert_eq!(cfg.metric, MetricKind::HtImcRatio);
        assert_eq!(cfg.thresholds, Thresholds::ht_imc_default());
    }
}
