//! Resource monitoring (the rule part of rule-condition-action).
//!
//! The paper's mechanism watches the DBMS through OS facilities: mpstat
//! for CPU load, likwid for HT/IMC traffic, and per-space page placement
//! for the priority queue (§IV-A). [`Monitor`] samples all of them over
//! the control interval and produces the integer-domain `u` value the
//! PetriNet predicates consume.

use emca_metrics::SimTime;
use numa_sim::{HwSnapshot, SpaceId};
use os_sim::{GroupId, Kernel, LoadSampler};

/// Which resource drives the performance-state transitions (§V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Windowed CPU demand of the DBMS threads over the allowed cores,
    /// in percent: `u = 100 · Δdemand_ns / (nalloc · Δwall)`, clamped to
    /// 100, where `demand_ns` integrates the group's runnable thread
    /// count over every scheduler tick. This is a *per-interval delta*:
    /// it measures demand over the whole control window instead of at
    /// one instant, so sub-interval scheduling noise (a momentarily
    /// drained runqueue between two query waves) cannot flip the
    /// PetriNet between Idle and Overload on alternate steps.
    CpuLoad,
    /// Instantaneous CPU demand (`u = 100 · runnable / nalloc` at the
    /// sample point) — what a point-in-time mpstat/loadavg snapshot
    /// sees. Oscillates with scheduling noise; kept for ablation.
    CpuLoadInstant,
    /// Windowed average CPU *usage* over the control interval (busy time
    /// over capacity; smoother but blind to queued demand — used for
    /// ablation).
    CpuLoadWindowed,
    /// Ratio of HyperTransport traffic to integrated-memory-controller
    /// traffic, in per-mille (`u = 1000 · HT/IMC`).
    HtImcRatio,
}

/// One monitoring sample.
#[derive(Clone, Debug)]
pub struct MonitorSample {
    /// Sample time.
    pub at: SimTime,
    /// The metric value in the PetriNet's integer domain.
    pub u: i64,
    /// Group CPU load in percent (always sampled, for reporting).
    pub cpu_load_pct: f64,
    /// HT/IMC ratio over the window (always sampled, for reporting).
    pub ht_imc_ratio: f64,
    /// Resident pages per NUMA node of the DBMS space (priority queue
    /// input).
    pub pages_per_node: Vec<u64>,
    /// Smoothed memory-controller utilisation per node (the adaptive
    /// mode's headroom signal).
    pub mc_util_per_node: Vec<f64>,
    /// Peak memory-controller utilisation across nodes (smoothed).
    pub max_mc_util: f64,
    /// Mean memory-controller utilisation across nodes (smoothed).
    pub mean_mc_util: f64,
    /// Traffic-weighted memory-controller utilisation: the utilisation
    /// experienced by the workload's own accesses (each node's smoothed
    /// utilisation weighted by its share of the window's IMC bytes).
    /// This is the `p(nalloc) ≥ p(ntotal)` signal — when ≥ 1, the
    /// controllers actually serving the data have no headroom left, so
    /// more cores cannot improve performance.
    pub mc_pressure: f64,
}

/// Windowed sampler over the kernel's counters.
pub struct Monitor {
    metric: MetricKind,
    group: GroupId,
    space: SpaceId,
    load: LoadSampler,
    prev_hw: HwSnapshot,
    prev_demand_ns: u64,
    prev_at: SimTime,
}

impl Monitor {
    /// Creates a monitor anchored at the kernel's current time.
    pub fn new(kernel: &Kernel, group: GroupId, space: SpaceId, metric: MetricKind) -> Self {
        Monitor {
            metric,
            group,
            space,
            load: LoadSampler::new(kernel, group),
            prev_hw: kernel.machine().counters().snapshot(),
            prev_demand_ns: kernel.group_demand_ns(group),
            prev_at: kernel.now(),
        }
    }

    /// The driving metric.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// Takes a sample over the window since the previous call.
    pub fn sample(&mut self, kernel: &Kernel) -> MonitorSample {
        let load = self.load.sample(kernel);
        let hw = kernel.machine().counters().snapshot();
        let ht_delta: u64 = hw
            .link_bytes
            .iter()
            .zip(&self.prev_hw.link_bytes)
            .map(|(&a, &b)| a.saturating_sub(b))
            .sum();
        let imc_deltas: Vec<u64> = hw
            .imc_bytes
            .iter()
            .zip(&self.prev_hw.imc_bytes)
            .map(|(&a, &b)| a.saturating_sub(b))
            .collect();
        let imc_delta: u64 = imc_deltas.iter().sum();
        self.prev_hw = hw;
        let ht_imc_ratio = if imc_delta == 0 {
            0.0
        } else {
            ht_delta as f64 / imc_delta as f64
        };
        let cpu_load_pct = load.group_load_pct();
        let demand_ns = kernel.group_demand_ns(self.group);
        let wall_ns = kernel.now().since(self.prev_at).as_nanos();
        let nalloc = kernel.group_mask(self.group).count().max(1);
        let u = match self.metric {
            MetricKind::CpuLoad => {
                let delta = demand_ns.saturating_sub(self.prev_demand_ns);
                if wall_ns == 0 {
                    // Zero-width window (two samples in one tick): fall
                    // back to the instantaneous view.
                    let runnable = kernel.group_runnable(self.group);
                    ((runnable as f64 / nalloc as f64) * 100.0)
                        .round()
                        .min(100.0) as i64
                } else {
                    ((delta as f64 / (nalloc as f64 * wall_ns as f64)) * 100.0)
                        .round()
                        .min(100.0) as i64
                }
            }
            MetricKind::CpuLoadInstant => {
                let runnable = kernel.group_runnable(self.group);
                ((runnable as f64 / nalloc as f64) * 100.0)
                    .round()
                    .min(100.0) as i64
            }
            MetricKind::CpuLoadWindowed => cpu_load_pct.round() as i64,
            MetricKind::HtImcRatio => (ht_imc_ratio * 1000.0).round() as i64,
        };
        self.prev_demand_ns = demand_ns;
        self.prev_at = kernel.now();
        let utils: Vec<f64> = kernel
            .machine()
            .topology()
            .all_nodes()
            .map(|n| kernel.machine().mc_utilisation(n))
            .collect();
        let max_mc_util = utils.iter().copied().fold(0.0f64, f64::max);
        let mean_mc_util = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
        let mc_pressure = if imc_delta == 0 {
            0.0
        } else {
            utils
                .iter()
                .zip(&imc_deltas)
                .map(|(&util, &bytes)| util * bytes as f64)
                .sum::<f64>()
                / imc_delta as f64
        };
        MonitorSample {
            at: kernel.now(),
            u,
            cpu_load_pct,
            ht_imc_ratio,
            pages_per_node: kernel.machine().mem().pages_per_node(self.space).to_vec(),
            mc_util_per_node: utils,
            max_mc_util,
            mean_mc_util,
            mc_pressure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emca_metrics::SimDuration;
    use numa_sim::{AccessKind, CoreId, StreamId};
    use os_sim::{CoreMask, SpinWork};

    fn kernel_with_group() -> (Kernel, GroupId, SpaceId) {
        let mut k = Kernel::opteron_4x4();
        let g = k.create_group(CoreMask::single(CoreId(0)));
        let space = k.machine_mut().create_space();
        (k, g, space)
    }

    #[test]
    fn cpu_load_metric_tracks_group() {
        let (mut k, g, space) = kernel_with_group();
        let mut m = Monitor::new(&k, g, space, MetricKind::CpuLoad);
        k.spawn(
            "spin",
            g,
            None,
            Box::new(SpinWork::new(SimDuration::from_millis(50))),
        );
        k.run_until(SimTime::from_millis(10));
        let s = m.sample(&k);
        assert!(s.u >= 95, "expected saturated load, got {}", s.u);
        assert!(s.cpu_load_pct >= 95.0);
        assert_eq!(s.at, SimTime::from_millis(10));
    }

    #[test]
    fn ht_imc_metric_reflects_remote_traffic() {
        let (mut k, g, space) = kernel_with_group();
        let mut m = Monitor::new(&k, g, space, MetricKind::HtImcRatio);
        // Home a region on node 0, then read it from node 3 repeatedly:
        // every miss crosses the interconnect, so HT/IMC ≈ 1.
        let region = k.machine_mut().alloc(space, 64 * numa_sim::SEG_BYTES);
        for seg in region.segments() {
            k.machine_mut()
                .access_segment(CoreId(0), seg, AccessKind::Read, StreamId(0));
        }
        let _ = m.sample(&k); // roll the window past the local warm-up
        for seg in region.segments() {
            k.machine_mut()
                .access_segment(CoreId(15), seg, AccessKind::Read, StreamId(0));
        }
        let s = m.sample(&k);
        assert!(s.u > 900, "expected ratio near 1000 per-mille, got {}", s.u);
        assert!(s.ht_imc_ratio > 0.9);
    }

    #[test]
    fn pages_per_node_flows_through() {
        let (mut k, g, space) = kernel_with_group();
        let mut m = Monitor::new(&k, g, space, MetricKind::CpuLoad);
        let region = k.machine_mut().alloc(space, numa_sim::SEG_BYTES);
        k.machine_mut()
            .access_segment(CoreId(9), region.segment(0), AccessKind::Read, StreamId(0));
        let s = m.sample(&k);
        // Core 9 lives on node 2.
        assert_eq!(s.pages_per_node[2], numa_sim::PAGES_PER_SEG);
    }

    #[test]
    fn idle_windows_report_zero() {
        let (mut k, g, space) = kernel_with_group();
        let mut m = Monitor::new(&k, g, space, MetricKind::HtImcRatio);
        k.run_until(SimTime::from_millis(5));
        let s = m.sample(&k);
        assert_eq!(s.u, 0);
        assert_eq!(s.ht_imc_ratio, 0.0);
    }
}
