//! # elastic-core — the elastic multi-core allocation mechanism
//!
//! The primary contribution of *"An Elastic Multi-Core Allocation
//! Mechanism for Database Systems"* (ICDE 2018), implemented over the
//! workspace's simulated NUMA machine and OS:
//!
//! - [`Monitor`]: samples CPU load (mpstat analogue) or the HT/IMC
//!   traffic ratio (likwid analogue), plus pages-per-node statistics;
//! - [`NodePriorityQueue`]: ranks NUMA nodes by the DBMS's resident
//!   pages (§IV-B2);
//! - allocation modes [`DenseMode`], [`SparseMode`] and [`AdaptiveMode`]
//!   deciding *where* cores are allocated/released (§IV-B);
//! - [`ElasticMechanism`]: the rule-condition-action pipeline driving the
//!   PetriNet PrT model and actuating cpuset masks (§III);
//! - [`lonc`]: the Local Optimum Number of Cores analysis (§IV-A).
//!
//! ```no_run
//! use elastic_core::{ElasticMechanism, MechanismConfig, AdaptiveMode};
//! use os_sim::{Kernel, CoreMask};
//! use emca_metrics::SimTime;
//!
//! let mut kernel = Kernel::opteron_4x4();
//! let group = kernel.create_group(CoreMask::all(kernel.machine().topology()));
//! let space = kernel.machine_mut().create_space();
//! let mut mech = ElasticMechanism::install(
//!     &mut kernel, group, space,
//!     Box::new(AdaptiveMode::default()),
//!     MechanismConfig::cpu_load().with_mode_latency("adaptive"),
//! );
//! mech.run_with(&mut kernel, SimTime::from_secs(1));
//! println!("LONC so far: {} cores", mech.nalloc());
//! ```

pub mod lonc;
pub mod mechanism;
pub mod modes;
pub mod monitor;
pub mod policy;
pub mod pool;
pub mod priority_queue;
pub mod sla;
pub mod tenant;

pub use mechanism::{ElasticMechanism, MechanismConfig, TransitionEvent};
pub use modes::{AdaptiveMode, AllocationMode, DenseMode, ModeCtx, SparseMode};
pub use monitor::{MetricKind, Monitor, MonitorSample};
pub use policy::{
    policy_by_name, Decision, HillClimbPolicy, Observation, Policy, PolicyCtx, PolicyId,
    SlaCappedPolicy, UnknownPolicy,
};
pub use pool::{PoolConfig, PoolController, PoolDecision};
pub use priority_queue::NodePriorityQueue;
pub use sla::{SlaGovernor, SlaPolicy};
pub use tenant::{
    fair_guarantee, ArbiterMode, SharedArbiter, TenantArbiter, TenantBinding, TenantId,
};
