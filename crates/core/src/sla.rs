//! SLA-constrained allocation — the paper's stated future work (§VII):
//! *"evaluate the benefits of our strategy in the cloud computing context
//! when accessing cores as needed, like meeting service level agreements
//! (e.g., energy or data traffic)"*.
//!
//! [`SlaPolicy`] is a declarative budget over the same counters the
//! mechanism already monitors. [`SlaGovernor`] turns each control sample
//! into a *cap* on the allocation: when a budget is violated the governor
//! lowers the permissible core count (releasing through the normal PrT
//! path by damping the signal), and raises it again while the budgets
//! hold. This composes with any allocation mode — the mode still decides
//! *where*, the governor bounds *how many*.

use crate::monitor::MonitorSample;
use emca_metrics::SimDuration;

/// Budgets an operator can attach to a tenant's DBMS group.
#[derive(Clone, Copy, Debug)]
pub struct SlaPolicy {
    /// Maximum average socket power in watts (CPU energy budget);
    /// `None` = unconstrained.
    pub max_power_w: Option<f64>,
    /// Maximum interconnect traffic rate in bytes/second (data-movement
    /// budget); `None` = unconstrained.
    pub max_ht_rate: Option<f64>,
    /// Hard ceiling on allocated cores (tenant sizing); `None` = machine
    /// size.
    pub max_cores: Option<u32>,
}

impl SlaPolicy {
    /// An unconstrained policy (the governor becomes a no-op).
    pub fn unconstrained() -> Self {
        SlaPolicy {
            max_power_w: None,
            max_ht_rate: None,
            max_cores: None,
        }
    }

    /// A cores-only tenant cap.
    pub fn cores(max: u32) -> Self {
        SlaPolicy {
            max_cores: Some(max),
            ..Self::unconstrained()
        }
    }
}

/// Rolling enforcement state.
#[derive(Clone, Debug)]
pub struct SlaGovernor {
    policy: SlaPolicy,
    /// Current allocation ceiling (cores).
    cap: u32,
    ntotal: u32,
    /// Consecutive compliant intervals needed before the cap is raised.
    raise_after: u32,
    compliant_streak: u32,
    /// Violations observed (reporting).
    pub violations: u64,
    /// Energy model constants for the power estimate.
    idle_w: f64,
    acp_w: f64,
    cores_per_socket: u32,
}

impl SlaGovernor {
    /// Creates a governor for a machine of `ntotal` cores
    /// (`cores_per_socket` wide) using the Opteron power constants.
    pub fn new(policy: SlaPolicy, ntotal: u32, cores_per_socket: u32) -> Self {
        assert!(ntotal >= 1 && cores_per_socket >= 1);
        let cap = policy.max_cores.unwrap_or(ntotal).clamp(1, ntotal);
        SlaGovernor {
            policy,
            cap,
            ntotal,
            raise_after: 4,
            compliant_streak: 0,
            violations: 0,
            idle_w: 25.0,
            acp_w: 75.0,
            cores_per_socket,
        }
    }

    /// The current allocation ceiling.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Estimated socket power draw at `busy` cores over `wall`.
    fn power_estimate(&self, busy_cores: f64) -> f64 {
        let sockets = (self.ntotal / self.cores_per_socket).max(1) as f64;
        let util = (busy_cores / self.ntotal as f64).clamp(0.0, 1.0);
        sockets * (self.idle_w + (self.acp_w - self.idle_w) * util)
    }

    /// Feeds one control sample; returns the (possibly updated) core cap.
    /// `ht_rate` is the interconnect rate over the interval, `busy_cores`
    /// the average number of busy cores, `interval` the window length.
    pub fn observe(
        &mut self,
        sample: &MonitorSample,
        ht_rate: f64,
        busy_cores: f64,
        _interval: SimDuration,
    ) -> u32 {
        let _ = sample;
        let hard_max = self
            .policy
            .max_cores
            .unwrap_or(self.ntotal)
            .clamp(1, self.ntotal);
        let mut violated = false;
        if let Some(max_power) = self.policy.max_power_w {
            if self.power_estimate(busy_cores) > max_power {
                violated = true;
            }
        }
        if let Some(max_ht) = self.policy.max_ht_rate {
            if ht_rate > max_ht {
                violated = true;
            }
        }
        if violated {
            self.violations += 1;
            self.compliant_streak = 0;
            self.cap = (self.cap.saturating_sub(1)).max(1);
        } else {
            self.compliant_streak += 1;
            if self.compliant_streak >= self.raise_after && self.cap < hard_max {
                self.cap += 1;
                self.compliant_streak = 0;
            }
        }
        self.cap = self.cap.min(hard_max);
        self.cap
    }

    /// Applies the cap to a metric value: if the allocation already sits
    /// at the cap, an Overload signal is damped into the stable band so
    /// the PrT net will not allocate past the SLA.
    pub fn damp(&self, u: i64, nalloc: u32, thresholds: prt_petrinet::Thresholds) -> i64 {
        if nalloc > self.cap {
            // Above the cap (it was just lowered): force a release.
            thresholds.thmin
        } else if nalloc == self.cap && u >= thresholds.thmax {
            (thresholds.thmin + thresholds.thmax) / 2
        } else {
            u
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emca_metrics::SimTime;
    use prt_petrinet::Thresholds;

    fn sample() -> MonitorSample {
        MonitorSample {
            at: SimTime::ZERO,
            u: 100,
            cpu_load_pct: 100.0,
            ht_imc_ratio: 0.0,
            pages_per_node: vec![0; 4],
            mc_util_per_node: vec![0.0; 4],
            max_mc_util: 0.0,
            mean_mc_util: 0.0,
            mc_pressure: 0.0,
        }
    }

    #[test]
    fn unconstrained_cap_is_machine_size() {
        let g = SlaGovernor::new(SlaPolicy::unconstrained(), 16, 4);
        assert_eq!(g.cap(), 16);
    }

    #[test]
    fn cores_policy_caps() {
        let g = SlaGovernor::new(SlaPolicy::cores(4), 16, 4);
        assert_eq!(g.cap(), 4);
    }

    #[test]
    fn traffic_violation_lowers_cap_then_recovers() {
        let policy = SlaPolicy {
            max_ht_rate: Some(1e9),
            ..SlaPolicy::unconstrained()
        };
        let mut g = SlaGovernor::new(policy, 16, 4);
        let s = sample();
        // Three violating intervals shrink the cap by three.
        for _ in 0..3 {
            g.observe(&s, 5e9, 8.0, SimDuration::from_millis(50));
        }
        assert_eq!(g.cap(), 13);
        assert_eq!(g.violations, 3);
        // Sustained compliance raises it back one step per streak.
        for _ in 0..4 {
            g.observe(&s, 0.0, 8.0, SimDuration::from_millis(50));
        }
        assert_eq!(g.cap(), 14);
    }

    #[test]
    fn power_budget_enforced() {
        // 4 sockets idle draw 100 W; full load 300 W. Budget 150 W allows
        // ~25% utilisation.
        let policy = SlaPolicy {
            max_power_w: Some(150.0),
            ..SlaPolicy::unconstrained()
        };
        let mut g = SlaGovernor::new(policy, 16, 4);
        let s = sample();
        g.observe(&s, 0.0, 16.0, SimDuration::from_millis(50));
        assert_eq!(g.violations, 1);
        g.observe(&s, 0.0, 2.0, SimDuration::from_millis(50));
        assert_eq!(g.violations, 1, "2 busy cores ≈ 125 W is compliant");
    }

    #[test]
    fn cap_never_leaves_bounds() {
        let policy = SlaPolicy {
            max_ht_rate: Some(1.0),
            max_cores: Some(2),
            max_power_w: None,
        };
        let mut g = SlaGovernor::new(policy, 16, 4);
        let s = sample();
        for _ in 0..10 {
            g.observe(&s, f64::MAX, 16.0, SimDuration::from_millis(50));
        }
        assert_eq!(g.cap(), 1, "cap floors at one core");
        for _ in 0..100 {
            g.observe(&s, 0.0, 0.0, SimDuration::from_millis(50));
        }
        assert_eq!(g.cap(), 2, "cap ceils at the policy maximum");
    }

    #[test]
    fn cores_only_policy_never_violates() {
        let mut g = SlaGovernor::new(SlaPolicy::cores(2), 16, 4);
        let s = sample();
        for _ in 0..10 {
            g.observe(&s, f64::MAX, 16.0, SimDuration::from_millis(50));
        }
        assert_eq!(g.violations, 0, "no budget, no violations");
        assert_eq!(g.cap(), 2);
    }

    #[test]
    fn damping_respects_cap() {
        let g = SlaGovernor::new(SlaPolicy::cores(4), 16, 4);
        let th = Thresholds::cpu_load_default();
        // Below cap: signal passes through.
        assert_eq!(g.damp(99, 2, th), 99);
        // At cap: overload damped to stable.
        assert_eq!(g.damp(99, 4, th), 40);
        // Over cap: forced release.
        assert_eq!(g.damp(99, 6, th), th.thmin);
        // Non-overload signals unaffected.
        assert_eq!(g.damp(50, 4, th), 50);
    }
}
